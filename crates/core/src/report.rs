//! Execution reports.
//!
//! Every run mode's report embeds the same [`PipelineReport`] core —
//! findings, log accounting, capture-filter ledger and degradation
//! ledger — and adds only what its execution model genuinely measures on
//! top (modeled clocks, per-shard wire statistics, replay stream
//! accounting). The mode reports deref to the core, so
//! `report.findings`, `report.log` and `report.degradation` read the
//! same way in all of them.

use std::fmt;

use lba_lifeguard::{CaptureStats, DegradationStats, Finding};
use lba_record::TraceStats;
use lba_transport::ChannelStats;

/// Which execution model produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No monitoring.
    Unmonitored,
    /// LBA: lifeguard on a second core fed by the hardware log.
    Lba,
    /// Valgrind-style DBI: lifeguard inline on the application core.
    Dbi,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Unmonitored => "unmonitored",
            Mode::Lba => "lba",
            Mode::Dbi => "dbi",
        })
    }
}

/// Where the application core lost time to monitoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles stalled because the log buffer was full (back-pressure).
    pub buffer_full_cycles: u64,
    /// Cycles stalled at syscalls waiting for the lifeguard to drain the
    /// log (the containment policy).
    pub syscall_stall_cycles: u64,
    /// Number of syscalls that stalled.
    pub syscalls: u64,
}

/// Log-pipeline statistics for an LBA run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LogStats {
    /// Records that entered the log (after the capture pass — what the
    /// transport actually shipped, fold summaries included).
    pub records: u64,
    /// Records observed at capture, before any filtering. `captured =
    /// records + filtered + deduped − folded`.
    pub captured: u64,
    /// Records dropped by the capture-side address filter.
    pub filtered: u64,
    /// Duplicate records suppressed by the capture-side idempotency
    /// window (zero when `LogConfig::idempotency_window` is 0 or the
    /// lifeguard's contract is `IdempotencyClass::None`).
    pub deduped: u64,
    /// `Repeat` summary records synthesized for fold-class lifeguards
    /// (already counted in `records`).
    pub folded: u64,
    /// Transport frames shipped (cache-line-multiple wire units).
    pub frames: u64,
    /// Total payload bits written (compressed, or raw when compression is
    /// off).
    pub compressed_bits: u64,
    /// Total bits on the wire: payload plus frame headers and line padding.
    pub wire_bits: u64,
    /// Average payload bytes per retired instruction — the paper's
    /// < 1 B/instruction claim.
    pub bytes_per_instruction: f64,
    /// Average *wire* bytes per retired instruction, framing overhead
    /// included — what the cache hierarchy actually carries.
    pub wire_bytes_per_instruction: f64,
}

impl LogStats {
    /// The single-channel accounting every unsharded mode reports: the
    /// channel's shipped-record/frame/bit counters joined with the
    /// capture filter's ledger, normalised per retired instruction.
    #[must_use]
    pub fn from_channel(stats: ChannelStats, capture: CaptureStats, instructions: u64) -> Self {
        let instructions = instructions.max(1);
        LogStats {
            records: stats.records,
            captured: capture.captured,
            filtered: capture.range_filtered,
            deduped: capture.deduped,
            folded: capture.folded,
            frames: stats.frames,
            compressed_bits: stats.payload_bits,
            wire_bits: stats.wire_bits,
            bytes_per_instruction: stats.payload_bits as f64 / 8.0 / instructions as f64,
            wire_bytes_per_instruction: stats.wire_bits as f64 / 8.0 / instructions as f64,
        }
    }

    /// The aggregate accounting of a fan-out mode: per-channel counters
    /// summed over shards or workers (broadcast records count once per
    /// receiving channel), joined with the producer-side capture ledger.
    #[must_use]
    pub fn from_channels(stats: &[ChannelStats], capture: CaptureStats, instructions: u64) -> Self {
        let mut sum = ChannelStats::default();
        for s in stats {
            sum.records += s.records;
            sum.frames += s.frames;
            sum.payload_bits += s.payload_bits;
            sum.wire_bits += s.wire_bits;
            sum.high_water_bits = sum.high_water_bits.max(s.high_water_bits);
        }
        LogStats::from_channel(sum, capture, instructions)
    }
}

/// The mode-independent core every run report embeds: what the pipeline
/// shipped, what capture did to it, how it degraded, and what the
/// lifeguard(s) found. The mode reports deref here, so these fields read
/// identically across all of them.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Problems the lifeguard(s) reported (merged and deduplicated in the
    /// fan-out modes).
    pub findings: Vec<Finding>,
    /// Log-pipeline statistics (aggregated over channels in the fan-out
    /// modes; see the mode report for per-channel detail).
    pub log: LogStats,
    /// What the producer-side capture pass did (records captured vs.
    /// shipped, range-filtered, deduped, folded).
    pub capture: CaptureStats,
    /// What the adaptive capture controller did (empty when
    /// `LogConfig::adaptive` is unset, the lifeguard's policy tolerates
    /// nothing, or the mode never runs a controller).
    pub degradation: DegradationStats,
}

/// Implements `Deref`/`DerefMut` from a mode report to its embedded
/// [`PipelineReport`] core (field name `pipeline`).
macro_rules! deref_pipeline {
    ($ty:ty) => {
        impl std::ops::Deref for $ty {
            type Target = crate::report::PipelineReport;
            fn deref(&self) -> &crate::report::PipelineReport {
                &self.pipeline
            }
        }
        impl std::ops::DerefMut for $ty {
            fn deref_mut(&mut self) -> &mut crate::report::PipelineReport {
                &mut self.pipeline
            }
        }
    };
}
pub(crate) use deref_pipeline;

/// The result of a live (two-OS-thread) run: functional findings plus real
/// wire statistics; no modeled clocks.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Program name.
    pub program: String,
    /// Retired-instruction statistics, gathered on the producer thread.
    pub trace: TraceStats,
    /// The shared pipeline core: findings, log statistics measured on the
    /// real framed channel, capture ledger, degradation ledger.
    pub pipeline: PipelineReport,
}

deref_pipeline!(LiveReport);

impl fmt::Display for LiveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [live]: {} instructions; log: {} records in {} frames, {:.3} B/inst on the wire",
            self.program,
            self.trace.instructions(),
            self.log.records,
            self.log.frames,
            self.log.wire_bytes_per_instruction,
        )?;
        write_degradation(f, &self.degradation)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Shared one-line degradation summary for report `Display` impls;
/// silent when the controller never engaged.
fn write_degradation(f: &mut fmt::Formatter<'_>, d: &DegradationStats) -> fmt::Result {
    if d.is_empty() {
        return Ok(());
    }
    writeln!(
        f,
        "  degraded: {} interval(s), {} records sampled out, {} kind-dropped, {} snapback(s)",
        d.engagements, d.sampled_out, d.kind_dropped, d.snapbacks,
    )
}

/// The result of a sharded live run (`run_live_parallel`): one producer
/// thread fanning the log out to `shards` consumer threads, each decoding
/// its own compressed frame stream. Findings are merged and deduplicated
/// across shards; the transport statistics stay per shard, because each
/// shard is an independent wire stream with its own predictor state. No
/// modeled clocks — for timing, see
/// [`ParallelReport`](crate::parallel::ParallelReport).
#[derive(Debug, Clone)]
pub struct LiveParallelReport {
    /// Program name.
    pub program: String,
    /// Shard count (consumer threads).
    pub shards: usize,
    /// Retired-instruction statistics, gathered on the producer thread.
    pub trace: TraceStats,
    /// Per-shard transport statistics (records, frames, wire bits), in
    /// shard order.
    pub shard_log: Vec<ChannelStats>,
    /// The shared pipeline core: findings merged over shards
    /// (deduplicated on `(kind, pc, addr, tid)` — broadcast events
    /// surface the same finding on every shard), shard-aggregated log
    /// statistics, the producer-side capture ledger, and the degradation
    /// ledger.
    pub pipeline: PipelineReport,
}

deref_pipeline!(LiveParallelReport);

impl LiveParallelReport {
    /// Records carried across all shards. Broadcast records are counted
    /// once per shard, so this is at least the retired event count.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.shard_log.iter().map(|s| s.records).sum()
    }

    /// Wire bits shipped across all shards.
    #[must_use]
    pub fn total_wire_bits(&self) -> u64 {
        self.shard_log.iter().map(|s| s.wire_bits).sum()
    }
}

impl fmt::Display for LiveParallelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [live x{} shards]: {} instructions; log: {} records, {} frames, {} wire bits across shards",
            self.program,
            self.shards,
            self.trace.instructions(),
            self.total_records(),
            self.shard_log.iter().map(|s| s.frames).sum::<u64>(),
            self.total_wire_bits(),
        )?;
        write_degradation(f, &self.degradation)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// The result of a remote-workers run ([`run_remote`](crate::run_remote)):
/// one producer thread fanning sealed frames over per-shard Unix-domain
/// sockets to `workers` lifeguard workers, each decoding its own stream
/// behind the credit window. Routing, frame boundaries, and the capture
/// pass are identical to [`run_live_parallel`](crate::run_live_parallel),
/// so each shard's wire stream — and the merged findings — match the
/// in-process sharded live mode byte for byte; only the transport differs.
#[derive(Debug, Clone)]
pub struct RemoteReport {
    /// Program name.
    pub program: String,
    /// Worker count (one socket stream per worker).
    pub workers: usize,
    /// Retired-instruction statistics, gathered on the producer thread.
    pub trace: TraceStats,
    /// Per-worker transport statistics (records, frames, wire bits), in
    /// shard order, from the producer side of each socket.
    pub shard_log: Vec<ChannelStats>,
    /// The shared pipeline core: findings merged over workers exactly as
    /// the sharded modes merge theirs, shard-aggregated log statistics,
    /// the producer-side capture ledger, and the degradation ledger.
    pub pipeline: PipelineReport,
}

deref_pipeline!(RemoteReport);

impl RemoteReport {
    /// Records carried across all worker sockets. Broadcast records are
    /// counted once per worker, so this is at least the retired count.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.shard_log.iter().map(|s| s.records).sum()
    }

    /// Wire bits shipped across all worker sockets.
    #[must_use]
    pub fn total_wire_bits(&self) -> u64 {
        self.shard_log.iter().map(|s| s.wire_bits).sum()
    }
}

impl fmt::Display for RemoteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [remote x{} workers]: {} instructions; log: {} records, {} frames, {} wire bits across sockets",
            self.program,
            self.workers,
            self.trace.instructions(),
            self.total_records(),
            self.shard_log.iter().map(|s| s.frames).sum::<u64>(),
            self.total_wire_bits(),
        )?;
        write_degradation(f, &self.degradation)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Per-stream accounting of an offline replay
/// ([`run_replay`](crate::run_replay)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStreamStats {
    /// The stream id (shard index of the recording run; 0 unsharded).
    pub stream: u32,
    /// Frames replayed from the recording.
    pub frames: u64,
    /// Records decoded and delivered.
    pub records: u64,
    /// Wire bits of the replayed frames — byte-identical to what the
    /// recording run's transport shipped on this stream.
    pub wire_bits: u64,
    /// Frames whose header carried the degraded mark — the recording
    /// run's adaptive controller was engaged while they sealed, so the
    /// degraded spans ride the flight-recorder stream into replay.
    pub degraded_frames: u64,
}

/// A torn or truncated tail a
/// [`SalvagePrefix`](crate::ReplayMode::SalvagePrefix) replay cut away:
/// the checksummed prefix of the stream was replayed, this is what was
/// abandoned past it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvagedTail {
    /// The stream whose tail was torn.
    pub stream: u32,
    /// Frames salvaged before the tear (the replayed prefix).
    pub frames_salvaged: u64,
    /// What the stream layer reported at the tear point.
    pub detail: String,
}

/// The result of replaying a recorded flight-recorder stream set through
/// a lifeguard ([`run_replay`](crate::run_replay)).
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Recording directory the replay consumed.
    pub dir: String,
    /// Codec version the recording was sealed under.
    pub codec_version: u32,
    /// Per-stream accounting, ascending by stream id.
    pub streams: Vec<ReplayStreamStats>,
    /// Torn tails a [`SalvagePrefix`](crate::ReplayMode::SalvagePrefix)
    /// replay cut away, one entry per damaged stream. Always empty under
    /// [`Strict`](crate::ReplayMode::Strict), which fails instead.
    pub salvaged: Vec<SalvagedTail>,
    /// The shared pipeline core. Findings of the replayed lifeguard(s) —
    /// for a multi-stream (sharded) recording, merged exactly as the
    /// sharded run modes merge theirs, so equality with the original run
    /// holds per mode. The log statistics aggregate the replayed streams
    /// (no payload-bit or capture detail: the recording carries sealed
    /// wire frames, not the capture pass that produced them).
    pub pipeline: PipelineReport,
}

deref_pipeline!(ReplayReport);

impl ReplayReport {
    /// The stream-aggregated pipeline core of a replay: every decoded
    /// record was "captured" as far as the replay can know, and payload
    /// bits are unknowable (only sealed wire frames were recorded).
    #[must_use]
    pub fn stream_pipeline(
        streams: &[ReplayStreamStats],
        findings: Vec<Finding>,
    ) -> PipelineReport {
        let records: u64 = streams.iter().map(|s| s.records).sum();
        PipelineReport {
            findings,
            log: LogStats {
                records,
                captured: records,
                frames: streams.iter().map(|s| s.frames).sum(),
                wire_bits: streams.iter().map(|s| s.wire_bits).sum(),
                ..LogStats::default()
            },
            capture: CaptureStats::default(),
            degradation: DegradationStats::default(),
        }
    }
}

impl ReplayReport {
    /// Records decoded across all streams.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.streams.iter().map(|s| s.records).sum()
    }

    /// Wire bits replayed across all streams.
    #[must_use]
    pub fn total_wire_bits(&self) -> u64 {
        self.streams.iter().map(|s| s.wire_bits).sum()
    }

    /// Frames that sealed while the recording run was degraded, across
    /// all streams.
    #[must_use]
    pub fn total_degraded_frames(&self) -> u64 {
        self.streams.iter().map(|s| s.degraded_frames).sum()
    }

    /// Whether the replay lost anything to a torn tail.
    #[must_use]
    pub fn is_lossy(&self) -> bool {
        !self.salvaged.is_empty()
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "replay of {} [codec v{}]: {} stream(s), {} records, {} wire bits",
            self.dir,
            self.codec_version,
            self.streams.len(),
            self.total_records(),
            self.total_wire_bits(),
        )?;
        if self.total_degraded_frames() > 0 {
            writeln!(
                f,
                "  degraded frames replayed: {}",
                self.total_degraded_frames()
            )?;
        }
        for tail in &self.salvaged {
            writeln!(
                f,
                "  stream {}: salvaged {} frame(s), tail lost ({})",
                tail.stream, tail.frames_salvaged, tail.detail
            )?;
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// The result of one execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name.
    pub program: String,
    /// Execution model.
    pub mode: Mode,
    /// End-to-end time in cycles (for LBA: max of the two cores' clocks).
    pub total_cycles: u64,
    /// Application-core time including monitoring-induced stalls.
    pub app_cycles: u64,
    /// Lifeguard-core time (zero for unmonitored; equals the inline
    /// monitoring overhead for DBI).
    pub lifeguard_cycles: u64,
    /// Retired-instruction statistics.
    pub trace: TraceStats,
    /// The shared pipeline core: findings, log statistics (LBA only;
    /// default for the unmonitored and DBI baselines, which ship no log),
    /// capture ledger and degradation ledger.
    pub pipeline: PipelineReport,
    /// Application stall breakdown (LBA only; default elsewhere).
    pub stalls: StallBreakdown,
}

deref_pipeline!(RunReport);

impl RunReport {
    /// Slowdown of this run relative to a baseline (usually the
    /// unmonitored run of the same program).
    ///
    /// # Panics
    ///
    /// Panics if the baseline ran zero cycles.
    #[must_use]
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        assert!(baseline.total_cycles > 0, "baseline must have run");
        self.total_cycles as f64 / baseline.total_cycles as f64
    }

    /// Findings of a particular kind.
    pub fn findings_of(
        &self,
        kind: lba_lifeguard::FindingKind,
    ) -> impl Iterator<Item = &Finding> + '_ {
        self.findings.iter().filter(move |f| f.kind == kind)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}]: {} cycles ({} instructions, CPI {:.2})",
            self.program,
            self.mode,
            self.total_cycles,
            self.trace.instructions(),
            self.total_cycles as f64 / self.trace.instructions().max(1) as f64,
        )?;
        if self.mode == Mode::Lba {
            writeln!(
                f,
                "  log: {} records in {} frames, {:.3} B/inst ({:.3} on the wire); \
                 stalls: buffer {} cy, syscall {} cy ({} syscalls)",
                self.log.records,
                self.log.frames,
                self.log.bytes_per_instruction,
                self.log.wire_bytes_per_instruction,
                self.stalls.buffer_full_cycles,
                self.stalls.syscall_stall_cycles,
                self.stalls.syscalls,
            )?;
        }
        write_degradation(f, &self.degradation)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(mode: Mode, cycles: u64) -> RunReport {
        RunReport {
            program: "t".into(),
            mode,
            total_cycles: cycles,
            app_cycles: cycles,
            lifeguard_cycles: 0,
            trace: TraceStats::new(),
            pipeline: PipelineReport::default(),
            stalls: StallBreakdown::default(),
        }
    }

    #[test]
    fn reports_deref_to_the_pipeline_core() {
        let mut r = report(Mode::Lba, 1);
        r.pipeline.log.records = 7;
        assert_eq!(r.log.records, 7, "field reads go through the core");
        r.log.frames = 3; // DerefMut: writes do too
        assert_eq!(r.pipeline.log.frames, 3);
    }

    #[test]
    fn slowdown_is_a_ratio() {
        let base = report(Mode::Unmonitored, 100);
        let lba = report(Mode::Lba, 390);
        assert!((lba.slowdown_vs(&base) - 3.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn zero_baseline_panics() {
        let base = report(Mode::Unmonitored, 0);
        let lba = report(Mode::Lba, 10);
        let _ = lba.slowdown_vs(&base);
    }

    #[test]
    fn display_includes_mode_and_cycles() {
        let r = report(Mode::Dbi, 1234);
        let s = r.to_string();
        assert!(s.contains("dbi"));
        assert!(s.contains("1234"));
    }
}
