//! Execution reports.

use std::fmt;

use lba_lifeguard::{CaptureStats, DegradationStats, Finding};
use lba_record::TraceStats;
use lba_transport::ChannelStats;

/// Which execution model produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No monitoring.
    Unmonitored,
    /// LBA: lifeguard on a second core fed by the hardware log.
    Lba,
    /// Valgrind-style DBI: lifeguard inline on the application core.
    Dbi,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Unmonitored => "unmonitored",
            Mode::Lba => "lba",
            Mode::Dbi => "dbi",
        })
    }
}

/// Where the application core lost time to monitoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles stalled because the log buffer was full (back-pressure).
    pub buffer_full_cycles: u64,
    /// Cycles stalled at syscalls waiting for the lifeguard to drain the
    /// log (the containment policy).
    pub syscall_stall_cycles: u64,
    /// Number of syscalls that stalled.
    pub syscalls: u64,
}

/// Log-pipeline statistics for an LBA run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LogStats {
    /// Records that entered the log (after the capture pass — what the
    /// transport actually shipped, fold summaries included).
    pub records: u64,
    /// Records observed at capture, before any filtering. `captured =
    /// records + filtered + deduped − folded`.
    pub captured: u64,
    /// Records dropped by the capture-side address filter.
    pub filtered: u64,
    /// Duplicate records suppressed by the capture-side idempotency
    /// window (zero when `LogConfig::idempotency_window` is 0 or the
    /// lifeguard's contract is `IdempotencyClass::None`).
    pub deduped: u64,
    /// `Repeat` summary records synthesized for fold-class lifeguards
    /// (already counted in `records`).
    pub folded: u64,
    /// Transport frames shipped (cache-line-multiple wire units).
    pub frames: u64,
    /// Total payload bits written (compressed, or raw when compression is
    /// off).
    pub compressed_bits: u64,
    /// Total bits on the wire: payload plus frame headers and line padding.
    pub wire_bits: u64,
    /// Average payload bytes per retired instruction — the paper's
    /// < 1 B/instruction claim.
    pub bytes_per_instruction: f64,
    /// Average *wire* bytes per retired instruction, framing overhead
    /// included — what the cache hierarchy actually carries.
    pub wire_bytes_per_instruction: f64,
}

/// The result of a live (two-OS-thread) run: functional findings plus real
/// wire statistics; no modeled clocks.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Program name.
    pub program: String,
    /// Problems the lifeguard reported.
    pub findings: Vec<Finding>,
    /// Retired-instruction statistics, gathered on the producer thread.
    pub trace: TraceStats,
    /// Log statistics measured on the real framed channel.
    pub log: LogStats,
    /// What the adaptive capture controller did (empty when
    /// `LogConfig::adaptive` is unset or the lifeguard's policy tolerates
    /// nothing).
    pub degradation: DegradationStats,
}

impl fmt::Display for LiveReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [live]: {} instructions; log: {} records in {} frames, {:.3} B/inst on the wire",
            self.program,
            self.trace.instructions(),
            self.log.records,
            self.log.frames,
            self.log.wire_bytes_per_instruction,
        )?;
        write_degradation(f, &self.degradation)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Shared one-line degradation summary for report `Display` impls;
/// silent when the controller never engaged.
fn write_degradation(f: &mut fmt::Formatter<'_>, d: &DegradationStats) -> fmt::Result {
    if d.is_empty() {
        return Ok(());
    }
    writeln!(
        f,
        "  degraded: {} interval(s), {} records sampled out, {} kind-dropped, {} snapback(s)",
        d.engagements, d.sampled_out, d.kind_dropped, d.snapbacks,
    )
}

/// The result of a sharded live run (`run_live_parallel`): one producer
/// thread fanning the log out to `shards` consumer threads, each decoding
/// its own compressed frame stream. Findings are merged and deduplicated
/// across shards; the transport statistics stay per shard, because each
/// shard is an independent wire stream with its own predictor state. No
/// modeled clocks — for timing, see
/// [`ParallelReport`](crate::parallel::ParallelReport).
#[derive(Debug, Clone)]
pub struct LiveParallelReport {
    /// Program name.
    pub program: String,
    /// Shard count (consumer threads).
    pub shards: usize,
    /// Findings merged over shards, deduplicated on `(kind, pc, addr,
    /// tid)` — broadcast events surface the same finding on every shard.
    pub findings: Vec<Finding>,
    /// Retired-instruction statistics, gathered on the producer thread.
    pub trace: TraceStats,
    /// Per-shard transport statistics (records, frames, wire bits), in
    /// shard order.
    pub shard_log: Vec<ChannelStats>,
    /// What the producer-side capture pass did (records captured vs.
    /// shipped; the sharded modes run the idempotency window but not the
    /// address-range filter).
    pub capture: CaptureStats,
    /// What the adaptive capture controller did on the producer (empty
    /// when `LogConfig::adaptive` is unset or the policy tolerates
    /// nothing).
    pub degradation: DegradationStats,
}

impl LiveParallelReport {
    /// Records carried across all shards. Broadcast records are counted
    /// once per shard, so this is at least the retired event count.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.shard_log.iter().map(|s| s.records).sum()
    }

    /// Wire bits shipped across all shards.
    #[must_use]
    pub fn total_wire_bits(&self) -> u64 {
        self.shard_log.iter().map(|s| s.wire_bits).sum()
    }
}

impl fmt::Display for LiveParallelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [live x{} shards]: {} instructions; log: {} records, {} frames, {} wire bits across shards",
            self.program,
            self.shards,
            self.trace.instructions(),
            self.total_records(),
            self.shard_log.iter().map(|s| s.frames).sum::<u64>(),
            self.total_wire_bits(),
        )?;
        write_degradation(f, &self.degradation)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Per-stream accounting of an offline replay
/// ([`run_replay`](crate::run_replay)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStreamStats {
    /// The stream id (shard index of the recording run; 0 unsharded).
    pub stream: u32,
    /// Frames replayed from the recording.
    pub frames: u64,
    /// Records decoded and delivered.
    pub records: u64,
    /// Wire bits of the replayed frames — byte-identical to what the
    /// recording run's transport shipped on this stream.
    pub wire_bits: u64,
    /// Frames whose header carried the degraded mark — the recording
    /// run's adaptive controller was engaged while they sealed, so the
    /// degraded spans ride the flight-recorder stream into replay.
    pub degraded_frames: u64,
}

/// A torn or truncated tail a
/// [`SalvagePrefix`](crate::ReplayMode::SalvagePrefix) replay cut away:
/// the checksummed prefix of the stream was replayed, this is what was
/// abandoned past it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvagedTail {
    /// The stream whose tail was torn.
    pub stream: u32,
    /// Frames salvaged before the tear (the replayed prefix).
    pub frames_salvaged: u64,
    /// What the stream layer reported at the tear point.
    pub detail: String,
}

/// The result of replaying a recorded flight-recorder stream set through
/// a lifeguard ([`run_replay`](crate::run_replay)).
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Recording directory the replay consumed.
    pub dir: String,
    /// Codec version the recording was sealed under.
    pub codec_version: u32,
    /// Per-stream accounting, ascending by stream id.
    pub streams: Vec<ReplayStreamStats>,
    /// Findings of the replayed lifeguard(s) — for a multi-stream
    /// (sharded) recording, merged exactly as the sharded run modes merge
    /// theirs, so equality with the original run holds per mode.
    pub findings: Vec<Finding>,
    /// Torn tails a [`SalvagePrefix`](crate::ReplayMode::SalvagePrefix)
    /// replay cut away, one entry per damaged stream. Always empty under
    /// [`Strict`](crate::ReplayMode::Strict), which fails instead.
    pub salvaged: Vec<SalvagedTail>,
}

impl ReplayReport {
    /// Records decoded across all streams.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.streams.iter().map(|s| s.records).sum()
    }

    /// Wire bits replayed across all streams.
    #[must_use]
    pub fn total_wire_bits(&self) -> u64 {
        self.streams.iter().map(|s| s.wire_bits).sum()
    }

    /// Frames that sealed while the recording run was degraded, across
    /// all streams.
    #[must_use]
    pub fn total_degraded_frames(&self) -> u64 {
        self.streams.iter().map(|s| s.degraded_frames).sum()
    }

    /// Whether the replay lost anything to a torn tail.
    #[must_use]
    pub fn is_lossy(&self) -> bool {
        !self.salvaged.is_empty()
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "replay of {} [codec v{}]: {} stream(s), {} records, {} wire bits",
            self.dir,
            self.codec_version,
            self.streams.len(),
            self.total_records(),
            self.total_wire_bits(),
        )?;
        if self.total_degraded_frames() > 0 {
            writeln!(
                f,
                "  degraded frames replayed: {}",
                self.total_degraded_frames()
            )?;
        }
        for tail in &self.salvaged {
            writeln!(
                f,
                "  stream {}: salvaged {} frame(s), tail lost ({})",
                tail.stream, tail.frames_salvaged, tail.detail
            )?;
        }
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// The result of one execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name.
    pub program: String,
    /// Execution model.
    pub mode: Mode,
    /// End-to-end time in cycles (for LBA: max of the two cores' clocks).
    pub total_cycles: u64,
    /// Application-core time including monitoring-induced stalls.
    pub app_cycles: u64,
    /// Lifeguard-core time (zero for unmonitored; equals the inline
    /// monitoring overhead for DBI).
    pub lifeguard_cycles: u64,
    /// Retired-instruction statistics.
    pub trace: TraceStats,
    /// Problems the lifeguard reported.
    pub findings: Vec<Finding>,
    /// Log statistics (LBA only; default elsewhere).
    pub log: LogStats,
    /// Application stall breakdown (LBA only; default elsewhere).
    pub stalls: StallBreakdown,
    /// What the adaptive capture controller did (empty when
    /// `LogConfig::adaptive` is unset, the lifeguard's policy tolerates
    /// nothing, or the mode is not LBA).
    pub degradation: DegradationStats,
}

impl RunReport {
    /// Slowdown of this run relative to a baseline (usually the
    /// unmonitored run of the same program).
    ///
    /// # Panics
    ///
    /// Panics if the baseline ran zero cycles.
    #[must_use]
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        assert!(baseline.total_cycles > 0, "baseline must have run");
        self.total_cycles as f64 / baseline.total_cycles as f64
    }

    /// Findings of a particular kind.
    pub fn findings_of(
        &self,
        kind: lba_lifeguard::FindingKind,
    ) -> impl Iterator<Item = &Finding> + '_ {
        self.findings.iter().filter(move |f| f.kind == kind)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}]: {} cycles ({} instructions, CPI {:.2})",
            self.program,
            self.mode,
            self.total_cycles,
            self.trace.instructions(),
            self.total_cycles as f64 / self.trace.instructions().max(1) as f64,
        )?;
        if self.mode == Mode::Lba {
            writeln!(
                f,
                "  log: {} records in {} frames, {:.3} B/inst ({:.3} on the wire); \
                 stalls: buffer {} cy, syscall {} cy ({} syscalls)",
                self.log.records,
                self.log.frames,
                self.log.bytes_per_instruction,
                self.log.wire_bytes_per_instruction,
                self.stalls.buffer_full_cycles,
                self.stalls.syscall_stall_cycles,
                self.stalls.syscalls,
            )?;
        }
        write_degradation(f, &self.degradation)?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(mode: Mode, cycles: u64) -> RunReport {
        RunReport {
            program: "t".into(),
            mode,
            total_cycles: cycles,
            app_cycles: cycles,
            lifeguard_cycles: 0,
            trace: TraceStats::new(),
            findings: Vec::new(),
            log: LogStats::default(),
            stalls: StallBreakdown::default(),
            degradation: DegradationStats::default(),
        }
    }

    #[test]
    fn slowdown_is_a_ratio() {
        let base = report(Mode::Unmonitored, 100);
        let lba = report(Mode::Lba, 390);
        assert!((lba.slowdown_vs(&base) - 3.9).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn zero_baseline_panics() {
        let base = report(Mode::Unmonitored, 0);
        let lba = report(Mode::Lba, 10);
        let _ = lba.slowdown_vs(&base);
    }

    #[test]
    fn display_includes_mode_and_cycles() {
        let r = report(Mode::Dbi, 1234);
        let s = r.to_string();
        assert!(s.contains("dbi"));
        assert!(s.contains("1234"));
    }
}
