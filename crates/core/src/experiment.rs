//! The experiment layer: one function per table/figure in the paper.
//!
//! Each function returns plain data rows; the `figures` binary in
//! `lba-bench` renders them as text tables, and the Criterion benches call
//! the same functions. See DESIGN.md §4 for the experiment ↔ paper index.

use lba_lifeguard::AddrRangeFilter;
use lba_mem::layout;
use lba_record::RAW_RECORD_BYTES;
use lba_workloads::Benchmark;

use crate::config::SystemConfig;
use crate::cosim::run_lba;
use crate::kind::LifeguardKind;
use crate::parallel::run_lba_parallel;
use crate::report::RunReport;
use crate::run::{run_dbi, run_unmonitored};
use crate::RunError;

/// One bar pair of Figure 2: a benchmark's Valgrind-style and LBA
/// slowdowns, normalised to unmonitored execution.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// DBI (Valgrind-model) slowdown ×.
    pub valgrind: f64,
    /// LBA slowdown ×.
    pub lba: f64,
    /// The full LBA report (log stats, stalls) for downstream tables.
    pub lba_report: RunReport,
}

impl Fig2Row {
    /// How much faster LBA is than the DBI baseline on this benchmark.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.valgrind / self.lba
    }
}

/// Reproduces one panel of **Figure 2**: runs every benchmark of `kind`
/// unmonitored, under DBI and under LBA, and reports normalised execution
/// times.
///
/// # Errors
///
/// Propagates any [`RunError`] from the runs.
pub fn figure2(
    kind: LifeguardKind,
    config: &SystemConfig,
    scale: u32,
) -> Result<Vec<Fig2Row>, RunError> {
    let mut rows = Vec::new();
    for &benchmark in kind.benchmarks() {
        let program = benchmark.build_scaled(scale);
        let base = run_unmonitored(&program, config)?;
        let mut dbi_lg = kind.make_dbi();
        let dbi = run_dbi(&program, dbi_lg.as_mut(), config)?;
        let mut lba_lg = kind.make_lba();
        let lba = run_lba(&program, lba_lg.as_mut(), config)?;
        rows.push(Fig2Row {
            benchmark,
            valgrind: dbi.slowdown_vs(&base),
            lba: lba.slowdown_vs(&base),
            lba_report: lba,
        });
    }
    Ok(rows)
}

/// One row of the workload-characterisation table (§3 prose: "on average,
/// a benchmark executes 209 million x86 instructions, of which 51% are
/// memory references").
#[derive(Debug, Clone, Copy)]
pub struct WorkloadRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Retired instructions.
    pub instructions: u64,
    /// Fraction of instructions that are memory references.
    pub memory_fraction: f64,
    /// Unmonitored cycles per instruction.
    pub cpi: f64,
}

/// Reproduces the workload-characterisation statistics.
///
/// # Errors
///
/// Propagates any [`RunError`] from the runs.
pub fn workload_table(config: &SystemConfig, scale: u32) -> Result<Vec<WorkloadRow>, RunError> {
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let program = benchmark.build_scaled(scale);
        let report = run_unmonitored(&program, config)?;
        rows.push(WorkloadRow {
            benchmark,
            instructions: report.trace.instructions(),
            memory_fraction: report.trace.memory_ref_fraction(),
            cpi: report.total_cycles as f64 / report.trace.instructions().max(1) as f64,
        });
    }
    Ok(rows)
}

/// One row of the compression table (§2: "less than one byte per
/// instruction").
#[derive(Debug, Clone, Copy)]
pub struct CompressionRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Records logged.
    pub records: u64,
    /// Compressed bytes per instruction.
    pub bytes_per_instruction: f64,
    /// Compression ratio versus the 25-byte raw record.
    pub ratio_vs_raw: f64,
}

/// Reproduces the §2 compression claim across all nine benchmarks.
///
/// # Errors
///
/// Propagates any [`RunError`] from the runs.
pub fn compression_table(
    config: &SystemConfig,
    scale: u32,
) -> Result<Vec<CompressionRow>, RunError> {
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let program = benchmark.build_scaled(scale);
        // AddrCheck subscribes to few events, so the lifeguard never
        // back-pressures the compressor measurement.
        let mut lg = LifeguardKind::AddrCheck.make_lba();
        let report = run_lba(&program, lg.as_mut(), config)?;
        let raw = report.log.records * RAW_RECORD_BYTES as u64;
        rows.push(CompressionRow {
            benchmark,
            records: report.log.records,
            bytes_per_instruction: report.log.bytes_per_instruction,
            ratio_vs_raw: raw as f64 / (report.log.compressed_bits as f64 / 8.0),
        });
    }
    Ok(rows)
}

/// The §3 summary: average slowdowns per lifeguard and the LBA-vs-Valgrind
/// speedup range (paper: averages 3.9× / 4.8× / 9.7×; speedups 4–19×).
#[derive(Debug, Clone, Copy)]
pub struct SummaryRow {
    /// The lifeguard.
    pub kind: LifeguardKind,
    /// Mean LBA slowdown over its benchmarks.
    pub lba_avg: f64,
    /// Mean DBI slowdown over its benchmarks.
    pub valgrind_avg: f64,
    /// Smallest per-benchmark LBA-vs-DBI speedup.
    pub speedup_min: f64,
    /// Largest per-benchmark LBA-vs-DBI speedup.
    pub speedup_max: f64,
    /// The paper's reported average LBA slowdown for reference.
    pub paper_lba_avg: f64,
}

/// Summarises Figure 2 panels into the §3 headline numbers.
#[must_use]
pub fn summarize(kind: LifeguardKind, rows: &[Fig2Row]) -> SummaryRow {
    assert!(!rows.is_empty(), "summary of an empty panel");
    let n = rows.len() as f64;
    SummaryRow {
        kind,
        lba_avg: rows.iter().map(|r| r.lba).sum::<f64>() / n,
        valgrind_avg: rows.iter().map(|r| r.valgrind).sum::<f64>() / n,
        speedup_min: rows
            .iter()
            .map(Fig2Row::speedup)
            .fold(f64::INFINITY, f64::min),
        speedup_max: rows.iter().map(Fig2Row::speedup).fold(0.0, f64::max),
        paper_lba_avg: kind.paper_avg_slowdown(),
    }
}

/// One row of ablation A: decoupled versus lock-step dispatch.
#[derive(Debug, Clone, Copy)]
pub struct DecouplingRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Slowdown with the paper's decoupled cores.
    pub decoupled: f64,
    /// Slowdown when the application waits for the lifeguard after every
    /// record.
    pub lockstep: f64,
}

/// Ablation A: quantifies §2's claim that the "lack of tight
/// synchronization significantly improves performance".
///
/// # Errors
///
/// Propagates any [`RunError`] from the runs.
pub fn ablation_decoupling(
    config: &SystemConfig,
    scale: u32,
) -> Result<Vec<DecouplingRow>, RunError> {
    let mut rows = Vec::new();
    for benchmark in [Benchmark::Gzip, Benchmark::Mcf] {
        let program = benchmark.build_scaled(scale);
        let base = run_unmonitored(&program, config)?;
        let mut lg = LifeguardKind::AddrCheck.make_lba();
        let decoupled = run_lba(&program, lg.as_mut(), config)?;
        let mut lockstep_cfg = config.clone();
        lockstep_cfg.log.decoupled = false;
        let mut lg = LifeguardKind::AddrCheck.make_lba();
        let lockstep = run_lba(&program, lg.as_mut(), &lockstep_cfg)?;
        rows.push(DecouplingRow {
            benchmark,
            decoupled: decoupled.slowdown_vs(&base),
            lockstep: lockstep.slowdown_vs(&base),
        });
    }
    Ok(rows)
}

/// One row of ablation B: the log-buffer size sweep.
#[derive(Debug, Clone, Copy)]
pub struct BufferRow {
    /// Buffer capacity in bytes.
    pub buffer_bytes: u64,
    /// TaintCheck-on-gzip slowdown at this size.
    pub slowdown: f64,
    /// Application cycles lost to back-pressure.
    pub buffer_stall_cycles: u64,
}

/// Ablation B: how buffer capacity trades application stalls for memory.
///
/// # Errors
///
/// Propagates any [`RunError`] from the runs.
pub fn ablation_buffer(config: &SystemConfig, scale: u32) -> Result<Vec<BufferRow>, RunError> {
    let program = Benchmark::Gzip.build_scaled(scale);
    let base = run_unmonitored(&program, config)?;
    let mut rows = Vec::new();
    for kib in [1u64, 4, 16, 64, 256, 1024] {
        let mut cfg = config.clone();
        cfg.log.buffer_bytes = kib << 10;
        let mut lg = LifeguardKind::TaintCheck.make_lba();
        let report = run_lba(&program, lg.as_mut(), &cfg)?;
        rows.push(BufferRow {
            buffer_bytes: kib << 10,
            slowdown: report.slowdown_vs(&base),
            buffer_stall_cycles: report.stalls.buffer_full_cycles,
        });
    }
    Ok(rows)
}

/// One row of ablation C: compression on/off.
#[derive(Debug, Clone, Copy)]
pub struct CompressionAblationRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Slowdown with the VPC compressor.
    pub compressed: f64,
    /// Slowdown shipping raw 25-byte records.
    pub raw: f64,
    /// Compressed bytes/instruction (raw is always 25).
    pub compressed_bytes_per_inst: f64,
}

/// Ablation C: what the compression engine buys (§2's motivation for it).
///
/// # Errors
///
/// Propagates any [`RunError`] from the runs.
pub fn ablation_compression(
    config: &SystemConfig,
    scale: u32,
) -> Result<Vec<CompressionAblationRow>, RunError> {
    let mut rows = Vec::new();
    for benchmark in [Benchmark::Gzip, Benchmark::Mcf] {
        let program = benchmark.build_scaled(scale);
        let base = run_unmonitored(&program, config)?;
        let mut lg = LifeguardKind::TaintCheck.make_lba();
        let compressed = run_lba(&program, lg.as_mut(), config)?;
        let mut raw_cfg = config.clone();
        raw_cfg.log.compression = false;
        let mut lg = LifeguardKind::TaintCheck.make_lba();
        let raw = run_lba(&program, lg.as_mut(), &raw_cfg)?;
        rows.push(CompressionAblationRow {
            benchmark,
            compressed: compressed.slowdown_vs(&base),
            raw: raw.slowdown_vs(&base),
            compressed_bytes_per_inst: compressed.log.bytes_per_instruction,
        });
    }
    Ok(rows)
}

/// One row of the filtering extension study.
#[derive(Debug, Clone, Copy)]
pub struct FilterRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// AddrCheck slowdown with every event logged.
    pub unfiltered: f64,
    /// AddrCheck slowdown with heap-only address filtering.
    pub filtered: f64,
    /// Fraction of records the filter removed.
    pub dropped_fraction: f64,
}

/// Extension: §3's proposed address-range filtering, applied to AddrCheck
/// (which only checks heap addresses, so a heap filter is sound).
///
/// # Errors
///
/// Propagates any [`RunError`] from the runs.
pub fn ext_filtering(config: &SystemConfig, scale: u32) -> Result<Vec<FilterRow>, RunError> {
    let mut rows = Vec::new();
    for benchmark in [Benchmark::Bc, Benchmark::Gzip, Benchmark::Tidy] {
        let program = benchmark.build_scaled(scale);
        let base = run_unmonitored(&program, config)?;
        let mut lg = LifeguardKind::AddrCheck.make_lba();
        let plain = run_lba(&program, lg.as_mut(), config)?;
        let mut cfg = config.clone();
        cfg.log.filter = Some(AddrRangeFilter::new(vec![(
            layout::HEAP_BASE,
            layout::HEAP_END,
        )]));
        let mut lg = LifeguardKind::AddrCheck.make_lba();
        let filtered = run_lba(&program, lg.as_mut(), &cfg)?;
        let total = (filtered.log.records + filtered.log.filtered).max(1);
        rows.push(FilterRow {
            benchmark,
            unfiltered: plain.slowdown_vs(&base),
            filtered: filtered.slowdown_vs(&base),
            dropped_fraction: filtered.log.filtered as f64 / total as f64,
        });
    }
    Ok(rows)
}

/// One row of the parallel-lifeguard extension study.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRow {
    /// Lifeguard cores used.
    pub shards: usize,
    /// LockSet-on-zchaff slowdown with that many cores.
    pub slowdown: f64,
}

/// Extension: §1/§3's parallel lifeguards — LockSet sharded by address
/// over 1–4 lifeguard cores on zchaff.
///
/// # Errors
///
/// Propagates any [`RunError`] from the runs.
pub fn ext_parallel(config: &SystemConfig, scale: u32) -> Result<Vec<ParallelRow>, RunError> {
    let program = Benchmark::Zchaff.build_scaled(scale);
    let base = run_unmonitored(&program, config)?;
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let report = run_lba_parallel(
            &program,
            || LifeguardKind::LockSet.make_lba(),
            shards,
            config,
        )?;
        rows.push(ParallelRow {
            shards,
            slowdown: report.total_cycles as f64 / base.total_cycles as f64,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn figure2_lockset_panel_has_expected_shape() {
        let rows = figure2(LifeguardKind::LockSet, &cfg(), 1).unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(
                row.valgrind > row.lba,
                "{}: DBI must be slower",
                row.benchmark
            );
            assert!(row.lba > 1.0);
            assert!(row.speedup() > 1.0);
        }
    }

    #[test]
    fn workload_table_covers_all_benchmarks() {
        let rows = workload_table(&cfg(), 1).unwrap();
        assert_eq!(rows.len(), 9);
        let avg: f64 = rows.iter().map(|r| r.memory_fraction).sum::<f64>() / rows.len() as f64;
        assert!(avg > 0.3 && avg < 0.62, "avg memory fraction {avg:.2}");
    }

    #[test]
    fn compression_below_one_byte_everywhere() {
        let rows = compression_table(&cfg(), 1).unwrap();
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(
                row.bytes_per_instruction < 1.0,
                "{}: {:.3} B/inst",
                row.benchmark,
                row.bytes_per_instruction
            );
            assert!(
                row.ratio_vs_raw > 25.0 * 0.8,
                "{}: weak ratio",
                row.benchmark
            );
        }
    }

    #[test]
    fn summarize_computes_means_and_ranges() {
        let rows = figure2(LifeguardKind::LockSet, &cfg(), 1).unwrap();
        let s = summarize(LifeguardKind::LockSet, &rows);
        assert!(s.valgrind_avg > s.lba_avg);
        assert!(s.speedup_max >= s.speedup_min);
        assert!((s.paper_lba_avg - 9.7).abs() < 1e-9);
    }

    #[test]
    fn decoupling_ablation_shows_benefit() {
        let rows = ablation_decoupling(&cfg(), 1).unwrap();
        for row in &rows {
            assert!(
                row.lockstep >= row.decoupled,
                "{}: lock-step must not be faster",
                row.benchmark
            );
        }
    }

    #[test]
    fn buffer_ablation_monotone_in_stalls() {
        let rows = ablation_buffer(&cfg(), 1).unwrap();
        // Stalls shrink (weakly) as the buffer grows.
        for pair in rows.windows(2) {
            assert!(pair[0].buffer_stall_cycles >= pair[1].buffer_stall_cycles);
        }
    }
}
