//! The unmonitored baseline and the DBI comparison runs.

use lba_cache::MemSystem;
use lba_cpu::{Machine, RunError, StepOutcome};
use lba_dbi::DbiEngine;
use lba_isa::Program;
use lba_lifeguard::Lifeguard;
use lba_record::TraceStats;

use crate::config::SystemConfig;
use crate::report::{Mode, PipelineReport, RunReport, StallBreakdown};

/// Runs `program` with no monitoring: the paper's normalisation baseline
/// (the denominator of every bar in Figure 2).
///
/// New code should prefer the unified [`Run`](crate::Run) builder
/// (`RunMode::Unmonitored`); this free function remains the mode's
/// direct entry point.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine.
pub fn run_unmonitored(program: &Program, config: &SystemConfig) -> Result<RunReport, RunError> {
    let mut machine = Machine::new(program, config.machine);
    let mut mem = MemSystem::new(config.mem_single());
    let mut trace = TraceStats::new();
    let cycles = machine.run(&mut mem, |r| trace.observe(&r.record))?;
    Ok(RunReport {
        program: program.name().to_string(),
        mode: Mode::Unmonitored,
        total_cycles: cycles,
        app_cycles: cycles,
        lifeguard_cycles: 0,
        trace,
        pipeline: PipelineReport::default(),
        stalls: StallBreakdown::default(),
    })
}

/// Runs `program` under the Valgrind-style DBI baseline: every retired
/// instruction is instrumented inline on the application core, with the
/// lifeguard's shadow traffic sharing the application's caches.
///
/// New code should prefer the unified [`Run`](crate::Run) builder
/// (`RunMode::Dbi`); this free function remains the mode's direct entry
/// point.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine.
pub fn run_dbi(
    program: &Program,
    lifeguard: &mut dyn Lifeguard,
    config: &SystemConfig,
) -> Result<RunReport, RunError> {
    let mut machine = Machine::new(program, config.machine);
    let mut mem = MemSystem::new(config.mem_single());
    let engine = DbiEngine::new(config.dbi);
    let mut trace = TraceStats::new();
    let mut findings = Vec::new();
    let mut app_cycles: u64 = 0;
    let mut monitor_cycles: u64 = 0;

    loop {
        match machine.step(&mut mem)? {
            StepOutcome::Finished => break,
            StepOutcome::Retired(r) => {
                trace.observe(&r.record);
                app_cycles += r.cycles;
                monitor_cycles +=
                    engine.instrument(lifeguard, &r.record, &mut mem, 0, &mut findings);
            }
        }
    }
    monitor_cycles += engine.finish(lifeguard, &mut mem, 0, &mut findings);

    Ok(RunReport {
        program: program.name().to_string(),
        mode: Mode::Dbi,
        total_cycles: app_cycles + monitor_cycles,
        app_cycles,
        lifeguard_cycles: monitor_cycles,
        trace,
        pipeline: PipelineReport {
            findings,
            ..PipelineReport::default()
        },
        stalls: StallBreakdown::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_lifeguards::AddrCheck;
    use lba_workloads::{bugs, Benchmark};

    #[test]
    fn unmonitored_reports_cycles_and_trace() {
        let program = Benchmark::Bc.build();
        let report = run_unmonitored(&program, &SystemConfig::default()).unwrap();
        assert!(report.total_cycles >= report.trace.instructions());
        assert_eq!(report.mode, Mode::Unmonitored);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn dbi_is_slower_than_unmonitored() {
        let program = Benchmark::Bc.build();
        let config = SystemConfig::default();
        let base = run_unmonitored(&program, &config).unwrap();
        let mut lg = AddrCheck::new();
        let dbi = run_dbi(&program, &mut lg, &config).unwrap();
        let slowdown = dbi.slowdown_vs(&base);
        assert!(
            slowdown > 3.0,
            "DBI slowdown {slowdown:.1} unreasonably small"
        );
    }

    #[test]
    fn dbi_detects_planted_memory_bugs() {
        let program = bugs::memory_bugs();
        let mut lg = AddrCheck::new();
        let report = run_dbi(&program, &mut lg, &SystemConfig::default()).unwrap();
        use lba_lifeguard::FindingKind::*;
        for kind in [UnallocatedAccess, DoubleFree, InvalidFree, Leak] {
            assert!(
                report.findings_of(kind).next().is_some(),
                "expected a {kind} finding, got {:?}",
                report.findings
            );
        }
    }
}
