//! The adaptive capture controller: contract-governed graceful
//! degradation of capture under transport back-pressure.
//!
//! Every knob of the capture pipeline is otherwise static for a run; when
//! the lifeguard falls behind, the only built-in responses are stalling
//! the application (back-pressure) or — in a real deployment — dropping
//! log data with no accounting. This module adds the middle path the
//! robustness story needs: the producer watches the transport's
//! [`LoadSample`] and, when occupancy crosses a hysteresis threshold,
//! *degrades capture along exactly the axes the lifeguard's declared
//! [`DegradationPolicy`] permits* — widening (or switching on) the dedup
//! window, demoting long-settled address regions to 1-in-N sampled
//! capture under the policy's [`RegionClassifier`] oracle, and dropping
//! event kinds the lifeguard's verdicts never read. Falling load, a new
//! finding, or a syscall phase change snaps capture back to full
//! fidelity, flushing what the policy says must flush.
//!
//! The controller is *not constructed* for a lifeguard whose policy is
//! [`DegradationPolicy::none`] (TaintCheck): the degraded and undegraded
//! pipelines are then the same code, which is the strongest possible
//! "provably untouched" argument. Every engage→disengage span is recorded
//! in [`DegradationStats`], and the transition points are flushed to
//! frame boundaries so the wire's degraded mark
//! (`FrameEncoder::set_degraded`) is frame-accurate and survives the
//! flight recorder into replay.

use lba_lifeguard::{
    DegradationPolicy, DegradationRequest, DegradationStats, DegradedInterval, RegionClassifier,
    RegionSampler, MAX_RECORDED_INTERVALS,
};
use lba_record::{EventKind, EventRecord};
use lba_transport::LoadSample;

/// Hysteresis thresholds and cadence of the adaptive capture controller.
/// Setting [`LogConfig::adaptive`](crate::LogConfig::adaptive) to
/// `Some(AdaptiveConfig::default())` turns adaptive capture on; `None`
/// (the default) keeps the pipeline bit-for-bit identical to a build
/// without the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Transport occupancy (permille) at or above which degradation
    /// engages. Parked frames push occupancy past 1000, so a threshold
    /// above 1000 engages only under genuine back-pressure.
    pub engage_permille: u32,
    /// Occupancy (permille) at or below which degradation disengages.
    /// Must sit well under `engage_permille` or the controller flaps.
    pub disengage_permille: u32,
    /// Records between occupancy samples. Sampling is a couple of atomic
    /// or field reads, but once per record is still wasted work; snapback
    /// triggers (findings, syscalls) are checked every record regardless.
    pub sample_stride: u32,
    /// Capacity the dedup window may widen to while degraded (clamped
    /// like `idempotency_window`). Only meaningful for lifeguards whose
    /// policy sets `widen_window`.
    pub widen_entries: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            engage_permille: 700,
            disengage_permille: 350,
            sample_stride: 64,
            widen_entries: 4096,
        }
    }
}

/// A capture-fidelity transition the run loop must apply to its filter
/// and transport. The controller owns the *decision*; the caller owns the
/// plumbing, because only it can flush its channel (and absorb the
/// modeled timing of that flush) and ship the tighten summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Degradation engaged. The caller must: flush the channel (so the
    /// degraded mark starts on a frame boundary), widen the capture
    /// filter's window if `widen`, and set the channel's degraded mark.
    Engage {
        /// Whether the policy widens the dedup window.
        widen: bool,
    },
    /// Degradation disengaged. The caller must: tighten the capture
    /// filter's window (shipping the flushed summaries) if `tighten`,
    /// flush the channel, and clear the degraded mark.
    Disengage {
        /// Whether the window was widened and must tighten-and-flush.
        tighten: bool,
        /// Whether this was a snapback (finding or syscall) rather than
        /// load falling below the disengage threshold.
        snapback: bool,
    },
}

/// What capture must do with one record while the controller is engaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Run the ordinary capture pass.
    Ship,
    /// Drop the record: a settled access sampled out, or a droppable
    /// kind. Already accounted in [`DegradationStats`].
    Drop,
}

/// The per-run controller driving one producer's capture fidelity. Build
/// with [`CaptureController::new`]; drive with one
/// [`tick`](Self::tick) + [`admit`](Self::admit) pair per retired record;
/// close with [`finish`](Self::finish).
#[derive(Debug)]
pub struct CaptureController {
    config: AdaptiveConfig,
    policy: DegradationPolicy,
    sampler: Option<RegionSampler>,
    classifier: Option<Box<dyn RegionClassifier>>,
    engaged: bool,
    /// Records observed at capture (every retired record, shipped or
    /// dropped) — the unit degraded intervals are expressed in.
    records: u64,
    since_sample: u32,
    /// A syscall arrived: snap back at the next tick.
    syscall_snap: bool,
    /// A lifeguard-side dial change requested via [`Self::request`],
    /// applied at the next tick.
    pending_request: Option<DegradationRequest>,
    last_findings: u64,
    open: Option<DegradedInterval>,
    stats: DegradationStats,
}

impl CaptureController {
    /// Builds the controller for one producer, or `None` when the policy
    /// tolerates nothing — the controller is then never constructed and
    /// the lifeguard's stream is provably untouched.
    #[must_use]
    pub fn new(config: AdaptiveConfig, policy: DegradationPolicy) -> Option<Self> {
        if policy.is_none() {
            return None;
        }
        let sampler = policy.sampling.and_then(RegionSampler::new);
        let classifier = policy.sampling.map(|s| (s.make_classifier)());
        Some(CaptureController {
            config,
            policy,
            sampler,
            classifier,
            engaged: false,
            records: 0,
            since_sample: 0,
            syscall_snap: false,
            pending_request: None,
            last_findings: 0,
            open: None,
            stats: DegradationStats::default(),
        })
    }

    /// Whether degradation is currently engaged.
    #[must_use]
    pub fn engaged(&self) -> bool {
        self.engaged
    }

    /// Latches a lifeguard-side degradation request
    /// ([`lba_lifeguard::Lifeguard::degradation_request`], polled by the
    /// runner after deliveries). The request is applied — and ledgered in
    /// [`DegradationStats::lifeguard_requests`] — at the next
    /// [`tick`](Self::tick), after snapback triggers but ahead of the
    /// occupancy sample, so analysis-driven dial changes share the same
    /// frame-boundary plumbing as load-driven ones. A request that asks
    /// for the state the controller is already in is still counted but
    /// produces no transition.
    pub fn request(&mut self, request: DegradationRequest) {
        self.pending_request = Some(request);
    }

    /// Decides whether capture fidelity changes at this record boundary.
    /// Call once per retired record, *before* [`admit`](Self::admit):
    /// `load` is the transport's current occupancy (sampled every
    /// `sample_stride` records; pass it unconditionally, it is cheap) and
    /// `findings` the current finding count — any growth snaps capture
    /// back to full fidelity immediately, as does a syscall observed by
    /// the previous `admit`.
    pub fn tick(&mut self, load: LoadSample, findings: u64) -> Option<Transition> {
        let finding_snap = findings != self.last_findings;
        self.last_findings = findings;
        let syscall_snap = std::mem::take(&mut self.syscall_snap);
        if self.engaged && (finding_snap || syscall_snap) {
            return Some(self.disengage(true));
        }
        if let Some(request) = self.pending_request.take() {
            self.stats.lifeguard_requests += 1;
            match request {
                DegradationRequest::Engage if !self.engaged => return Some(self.engage()),
                DegradationRequest::Disengage if self.engaged => {
                    return Some(self.disengage(false))
                }
                _ => {}
            }
        }
        self.since_sample += 1;
        if self.since_sample < self.config.sample_stride {
            return None;
        }
        self.since_sample = 0;
        let occupancy = load.occupancy_permille();
        if !self.engaged && occupancy >= self.config.engage_permille {
            Some(self.engage())
        } else if self.engaged && occupancy <= self.config.disengage_permille {
            Some(self.disengage(false))
        } else {
            None
        }
    }

    /// Observes one retired record and, while engaged, decides its fate.
    /// Call for **every** record, engaged or not — the policy's
    /// classifier must see the full stream (in order, ahead of any drop
    /// decision) or its settled-verdict answers would lag reality.
    pub fn admit(&mut self, rec: &EventRecord) -> Verdict {
        self.records += 1;
        if let Some(classifier) = &mut self.classifier {
            classifier.observe(rec);
        }
        if rec.kind == EventKind::Syscall {
            // Phase change: snap back at the next tick. The syscall
            // record itself always ships (containment flushes behind it).
            self.syscall_snap = true;
        }
        if !self.engaged {
            return Verdict::Ship;
        }
        self.stats.degraded_records += 1;
        if let Some(interval) = &mut self.open {
            if let Some(sampler) = &mut self.sampler {
                if sampler.repromotes(rec) {
                    sampler.repromote_all();
                }
            }
            if self.policy.droppable.contains(rec.kind) {
                self.stats.kind_dropped += 1;
                interval.kind_dropped += 1;
                return Verdict::Drop;
            }
            if rec.is_memory() {
                if let (Some(sampler), Some(classifier)) = (&mut self.sampler, &self.classifier) {
                    if classifier.verdict_settled(rec) && sampler.sample_out(rec) {
                        self.stats.sampled_out += 1;
                        interval.sampled_out += 1;
                        return Verdict::Drop;
                    }
                }
            }
        }
        Verdict::Ship
    }

    /// Closes the run: ends any open degraded interval at the final
    /// record count and returns the full accounting.
    #[must_use]
    pub fn finish(mut self) -> DegradationStats {
        if self.engaged {
            self.close_interval(false);
        }
        self.stats
    }

    fn engage(&mut self) -> Transition {
        self.engaged = true;
        self.stats.engagements += 1;
        let widen = self.policy.widen_window;
        if widen {
            self.stats.window_widenings += 1;
        }
        if let Some(sampler) = &mut self.sampler {
            // Each interval starts at full capture: regions must re-prove
            // themselves settled before demotion.
            sampler.repromote_all();
        }
        self.open = Some(DegradedInterval {
            from_record: self.records,
            to_record: self.records,
            sampled_out: 0,
            kind_dropped: 0,
            widened: widen,
            sampled: self.sampler.is_some(),
            dropped_kinds: !self.policy.droppable.is_empty(),
        });
        Transition::Engage { widen }
    }

    fn disengage(&mut self, snapback: bool) -> Transition {
        let tighten = self.close_interval(snapback);
        Transition::Disengage { tighten, snapback }
    }

    /// Ends the open interval, recording it (up to the cap). Returns
    /// whether the interval had widened the window.
    fn close_interval(&mut self, snapback: bool) -> bool {
        self.engaged = false;
        if snapback {
            self.stats.snapbacks += 1;
        }
        let Some(mut interval) = self.open.take() else {
            return self.policy.widen_window;
        };
        interval.to_record = self.records;
        if self.stats.intervals.len() < MAX_RECORDED_INTERVALS {
            self.stats.intervals.push(interval);
        }
        interval.widened
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lba_lifeguard::{AlwaysSettled, SamplingSpec};
    use lba_record::EventMask;

    fn sampling_policy() -> DegradationPolicy {
        DegradationPolicy {
            widen_window: true,
            droppable: EventMask::of(&[EventKind::Lock, EventKind::Unlock]),
            sampling: Some(SamplingSpec {
                region_granule_log2: 4,
                clean_threshold: 2,
                sample_rate: 2,
                repromote_on: EventMask::of(&[EventKind::Alloc, EventKind::Free]),
                make_classifier: || Box::new(AlwaysSettled),
            }),
            findings_sound: true,
        }
    }

    fn load(addr: u64) -> EventRecord {
        EventRecord::load(0x1000, 0, Some(1), Some(2), addr, 4)
    }

    fn sample(permille: u64) -> LoadSample {
        LoadSample {
            inflight: permille,
            capacity: 1000,
        }
    }

    fn quick() -> AdaptiveConfig {
        AdaptiveConfig {
            sample_stride: 1,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn none_policy_never_builds_a_controller() {
        assert!(
            CaptureController::new(AdaptiveConfig::default(), DegradationPolicy::none()).is_none()
        );
    }

    #[test]
    fn hysteresis_engages_high_and_disengages_low() {
        let mut ctl = CaptureController::new(quick(), sampling_policy()).unwrap();
        assert_eq!(ctl.tick(sample(500), 0), None, "below engage: nothing");
        assert_eq!(
            ctl.tick(sample(900), 0),
            Some(Transition::Engage { widen: true })
        );
        assert!(ctl.engaged());
        assert_eq!(
            ctl.tick(sample(500), 0),
            None,
            "inside the hysteresis band: stays engaged"
        );
        assert_eq!(
            ctl.tick(sample(100), 0),
            Some(Transition::Disengage {
                tighten: true,
                snapback: false
            })
        );
        assert!(!ctl.engaged());
        let stats = ctl.finish();
        assert_eq!(stats.engagements, 1);
        assert_eq!(stats.snapbacks, 0);
        assert_eq!(stats.window_widenings, 1);
        assert_eq!(stats.intervals.len(), 1);
    }

    #[test]
    fn a_new_finding_snaps_back_immediately() {
        let mut ctl = CaptureController::new(quick(), sampling_policy()).unwrap();
        ctl.tick(sample(900), 0);
        assert!(ctl.engaged());
        // Occupancy is still sky-high, but a finding landed.
        assert_eq!(
            ctl.tick(sample(999), 1),
            Some(Transition::Disengage {
                tighten: true,
                snapback: true
            })
        );
        assert_eq!(ctl.finish().snapbacks, 1);
    }

    #[test]
    fn a_syscall_snaps_back_at_the_next_tick() {
        let mut ctl = CaptureController::new(quick(), sampling_policy()).unwrap();
        ctl.tick(sample(900), 0);
        let mut sys = load(0x40);
        sys.kind = EventKind::Syscall;
        assert_eq!(ctl.admit(&sys), Verdict::Ship, "the syscall itself ships");
        assert_eq!(
            ctl.tick(sample(999), 0),
            Some(Transition::Disengage {
                tighten: true,
                snapback: true
            })
        );
    }

    #[test]
    fn droppable_kinds_drop_only_while_engaged() {
        let mut ctl = CaptureController::new(quick(), sampling_policy()).unwrap();
        let mut lock = load(0x40);
        lock.kind = EventKind::Lock;
        assert_eq!(ctl.admit(&lock), Verdict::Ship, "not engaged: ships");
        ctl.tick(sample(900), 0);
        assert_eq!(ctl.admit(&lock), Verdict::Drop);
        let stats = ctl.finish();
        assert_eq!(stats.kind_dropped, 1);
        assert_eq!(stats.intervals[0].kind_dropped, 1);
    }

    #[test]
    fn sampling_drops_settled_accesses_past_the_threshold() {
        let mut ctl = CaptureController::new(quick(), sampling_policy()).unwrap();
        ctl.tick(sample(900), 0);
        let mut dropped = 0;
        for _ in 0..10 {
            if ctl.admit(&load(0x40)) == Verdict::Drop {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "the hot settled region must demote");
        let stats = ctl.finish();
        assert_eq!(stats.sampled_out, dropped);
        assert_eq!(stats.intervals.len(), 1);
        assert_eq!(stats.intervals[0].sampled_out, dropped);
        assert_eq!(stats.degraded_records, 10);
    }

    #[test]
    fn intervals_cover_the_removed_records() {
        let mut ctl = CaptureController::new(quick(), sampling_policy()).unwrap();
        for round in 0..3 {
            ctl.tick(sample(900), 0);
            for i in 0..20u64 {
                let _ = ctl.admit(&load(0x40 + (i % 2) * 0x100));
            }
            ctl.tick(sample(100), round); // disengage (round>0 also snapbacks)
        }
        let stats = ctl.finish();
        assert_eq!(stats.engagements, 3);
        assert_eq!(stats.intervals.len(), 3);
        let by_interval: u64 = stats.intervals.iter().map(|i| i.sampled_out).sum();
        assert_eq!(by_interval, stats.sampled_out);
        for interval in &stats.intervals {
            assert!(interval.from_record <= interval.to_record);
            assert!(
                interval.sampled_out + interval.kind_dropped
                    <= interval.to_record - interval.from_record
            );
        }
    }

    #[test]
    fn run_ending_engaged_closes_the_interval() {
        let mut ctl = CaptureController::new(quick(), sampling_policy()).unwrap();
        ctl.tick(sample(900), 0);
        for _ in 0..5 {
            let _ = ctl.admit(&load(0x40));
        }
        let stats = ctl.finish();
        assert_eq!(stats.intervals.len(), 1);
        assert_eq!(stats.intervals[0].to_record, 5);
    }

    #[test]
    fn lifeguard_requests_drive_and_ledger_transitions() {
        let mut ctl = CaptureController::new(quick(), sampling_policy()).unwrap();
        ctl.request(DegradationRequest::Engage);
        assert_eq!(
            ctl.tick(sample(0), 0),
            Some(Transition::Engage { widen: true }),
            "an analysis-side request engages even at zero load"
        );
        // Redundant request: counted, no transition.
        ctl.request(DegradationRequest::Engage);
        assert_eq!(ctl.tick(sample(500), 0), None);
        ctl.request(DegradationRequest::Disengage);
        assert_eq!(
            ctl.tick(sample(999), 0),
            Some(Transition::Disengage {
                tighten: true,
                snapback: false
            }),
            "a disengage request overrides high occupancy"
        );
        let stats = ctl.finish();
        assert_eq!(stats.lifeguard_requests, 3);
        assert_eq!(stats.engagements, 1);
    }

    #[test]
    fn stride_skips_load_samples_but_not_snapbacks() {
        let mut ctl = CaptureController::new(
            AdaptiveConfig {
                sample_stride: 4,
                ..AdaptiveConfig::default()
            },
            sampling_policy(),
        )
        .unwrap();
        assert_eq!(ctl.tick(sample(900), 0), None);
        assert_eq!(ctl.tick(sample(900), 0), None);
        assert_eq!(ctl.tick(sample(900), 0), None);
        assert!(
            matches!(ctl.tick(sample(900), 0), Some(Transition::Engage { .. })),
            "the stride-th tick samples"
        );
        // A finding disengages on the very next tick, stride regardless.
        assert!(matches!(
            ctl.tick(sample(900), 7),
            Some(Transition::Disengage { snapback: true, .. })
        ));
    }
}
