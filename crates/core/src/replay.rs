//! Offline replay: drive any lifeguard over a recorded flight-recorder
//! stream set.
//!
//! A run with [`LogConfig::record_to`](crate::LogConfig) set leaves a
//! directory of segmented `lbas/1` streams behind — the exact sealed wire
//! frames its transport shipped, one stream per shard. [`run_replay`]
//! opens that directory, validates the headers, re-decodes every frame
//! through the real [`FrameDecoder`], and delivers the records to a fresh
//! lifeguard per stream: yesterday's traffic, today's (possibly
//! *different*) analysis — the paper's retroactive-monitoring story, and
//! the shape Jahier & Ducassé's one-trace-many-analyses monitor takes.
//! In pipeline terms this is the
//! [`ReplaySource`](crate::pipeline::ReplaySource) topology: the recorded
//! streams stand in for the producer, one consumer per stream.
//!
//! Fidelity contract: the recorded frames are the sealed wire images, so
//! the replay's per-stream wire-bit totals equal the recording run's
//! transport accounting bit for bit, and the findings equal the original
//! run's (merged across streams exactly as the sharded modes merge
//! theirs). Integration tests pin both for all four run modes.
//!
//! Replay decodes with the codec parameters in the caller's
//! [`SystemConfig`] — use the same `compression` / `records_per_frame`
//! settings the recording run used. A stream sealed under a different
//! codec *version* is refused up front ([`ReplayError::CodecMismatch`]);
//! damaged or truncated recordings surface as descriptive
//! [`ReplayError::Stream`] errors, never panics.

use std::fmt;
use std::path::Path;

use lba_cache::MemSystem;
use lba_compress::{Frame, FrameDecodeError, FrameDecoder, CODEC_VERSION};
use lba_lifeguard::{DispatchEngine, Lifeguard};
use lba_record::{stream_ids, EventRecord, SegmentReader, StreamError};

use crate::config::SystemConfig;
use crate::parallel::merge_shard_findings;
use crate::report::{ReplayReport, ReplayStreamStats, SalvagedTail};

/// The lifeguard-core MemSystem index used for shadow-cost accounting
/// (replay reports no modeled clocks, like the live modes).
const LG_CORE: usize = 1;

/// Everything that can go wrong replaying a recording.
#[derive(Debug)]
pub enum ReplayError {
    /// The stream layer reported a problem (missing/truncated/corrupt
    /// segments, unknown format version, I/O).
    Stream(StreamError),
    /// The recording directory holds no streams at all.
    NoStreams {
        /// The directory inspected.
        dir: String,
    },
    /// The recording was sealed under a different codec version than this
    /// build decodes — replaying would produce garbage, so it is refused.
    CodecMismatch {
        /// The stream with the mismatched codec.
        stream: u32,
        /// Codec version stamped in the recording.
        recorded: u32,
        /// Codec version of the running build.
        running: u32,
    },
    /// A recorded frame failed to decode (wrong `compression` /
    /// `records_per_frame` settings for this recording, or a codec bug).
    Decode {
        /// The stream the frame belongs to.
        stream: u32,
        /// Zero-based index of the frame within its stream.
        frame: u64,
        /// The decoder's error.
        source: FrameDecodeError,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Stream(e) => write!(f, "{e}"),
            ReplayError::NoStreams { dir } => {
                write!(f, "no recorded streams in {dir}")
            }
            ReplayError::CodecMismatch {
                stream,
                recorded,
                running,
            } => write!(
                f,
                "stream {stream} was recorded under codec version {recorded}, \
                 but this build decodes version {running}"
            ),
            ReplayError::Decode {
                stream,
                frame,
                source,
            } => write!(
                f,
                "frame {frame} of stream {stream} failed to decode \
                 (were the recording's compression settings used?): {source}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Stream(e) => Some(e),
            ReplayError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StreamError> for ReplayError {
    fn from(e: StreamError) -> Self {
        ReplayError::Stream(e)
    }
}

/// How a replay treats a damaged recording.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReplayMode {
    /// Any stream damage is fatal: the replay fails with a descriptive
    /// [`ReplayError`] and delivers nothing. The default, and what
    /// [`run_replay`] always does.
    #[default]
    Strict,
    /// A torn or truncated *tail* is survivable: the checksummed prefix
    /// of each damaged stream is replayed in full, the tear point is
    /// reported as a [`SalvagedTail`], and the replay completes with
    /// whatever the recording still proves. Damage that precedes any
    /// frame — an unopenable stream, a codec-version mismatch — stays
    /// fatal: there is no trustworthy prefix to salvage.
    SalvagePrefix,
}

/// Replays every stream recorded in `dir` through a fresh lifeguard per
/// stream, returning the merged findings and per-stream wire accounting.
///
/// `make_lifeguard` builds one lifeguard instance per recorded stream —
/// it does **not** have to be the lifeguard that ran live; any lifeguard
/// whose event subscriptions are satisfied by the recorded stream works
/// (recordings are unfiltered full streams unless the original run
/// filtered at capture). For a sharded recording the per-stream findings
/// are merged exactly as the sharded run modes merge theirs.
///
/// Replay is functional, not timed: records are delivered frame-at-a-time
/// at maximum speed, with no transport model in the loop.
///
/// New code should prefer the unified [`Run`](crate::Run) builder
/// (`RunMode::Replay` with `replay_from(dir)`); this free function
/// remains the mode's direct entry point.
///
/// # Errors
///
/// See [`ReplayError`]: stream-layer damage, a codec-version mismatch,
/// or a frame that fails to decode.
pub fn run_replay(
    dir: impl AsRef<Path>,
    make_lifeguard: impl Fn() -> Box<dyn Lifeguard>,
    config: &SystemConfig,
) -> Result<ReplayReport, ReplayError> {
    run_replay_with(dir, make_lifeguard, config, ReplayMode::Strict)
}

/// [`run_replay`] with an explicit damage policy — see [`ReplayMode`].
///
/// # Errors
///
/// As [`run_replay`] under [`ReplayMode::Strict`]. Under
/// [`ReplayMode::SalvagePrefix`] a mid-stream tear is *not* an error:
/// the damaged stream's checksummed prefix is delivered and the loss is
/// reported in [`ReplayReport::salvaged`]. Errors that precede any frame
/// (unopenable stream, codec mismatch, no streams at all) and decode
/// failures of *intact* frames remain fatal in both modes.
///
/// New code should prefer the unified [`Run`](crate::Run) builder
/// (`RunMode::Replay` with `replay_mode(mode)`); this free function
/// remains the mode's direct entry point.
pub fn run_replay_with(
    dir: impl AsRef<Path>,
    make_lifeguard: impl Fn() -> Box<dyn Lifeguard>,
    config: &SystemConfig,
    mode: ReplayMode,
) -> Result<ReplayReport, ReplayError> {
    let dir = dir.as_ref();
    let ids = stream_ids(dir)?;
    if ids.is_empty() {
        return Err(ReplayError::NoStreams {
            dir: dir.display().to_string(),
        });
    }

    let mut codec_version = CODEC_VERSION;
    let mut shard_findings = Vec::with_capacity(ids.len());
    let mut streams = Vec::with_capacity(ids.len());
    let mut salvaged: Vec<SalvagedTail> = Vec::new();
    for &stream in &ids {
        let mut reader = SegmentReader::open(dir, stream)?;
        if reader.codec_version() != CODEC_VERSION {
            return Err(ReplayError::CodecMismatch {
                stream,
                recorded: reader.codec_version(),
                running: CODEC_VERSION,
            });
        }
        codec_version = reader.codec_version();

        // Each stream was sealed by its own encoder (shards never share
        // predictor state), so each gets a fresh decoder — and its frames
        // must be decoded in seal order, which the reader guarantees.
        let mut decoder = FrameDecoder::new(config.log.frame_config());
        let mut lifeguard = make_lifeguard();
        let engine = DispatchEngine::new(config.dispatch);
        let mut mem = MemSystem::new(config.mem_dual());
        let mut findings = Vec::new();
        let mut batch: Vec<EventRecord> = Vec::new();
        let mut stats = ReplayStreamStats {
            stream,
            frames: 0,
            records: 0,
            wire_bits: 0,
            degraded_frames: 0,
        };
        loop {
            let frame = match reader.next_frame() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(e) => {
                    // Mid-stream damage: everything before this point
                    // passed its segment checksums. Strict mode refuses
                    // the whole replay; salvage mode keeps the proven
                    // prefix and reports exactly where the tail was lost.
                    if mode == ReplayMode::Strict {
                        return Err(e.into());
                    }
                    salvaged.push(SalvagedTail {
                        stream,
                        frames_salvaged: stats.frames,
                        detail: e.to_string(),
                    });
                    break;
                }
            };
            batch.clear();
            decoder
                .decode_frame(&frame.bytes, &mut batch)
                .map_err(|source| ReplayError::Decode {
                    stream,
                    frame: stats.frames,
                    source,
                })?;
            engine.deliver_batch(lifeguard.as_mut(), &batch, &mut mem, LG_CORE, &mut findings);
            stats.frames += 1;
            stats.records += batch.len() as u64;
            stats.wire_bits += frame.wire_bits();
            // The degraded mark rides the recorded wire image, so replay
            // can report which spans the original run captured degraded.
            if Frame::header_degraded(&frame.bytes) {
                stats.degraded_frames += 1;
            }
        }
        engine.finish(lifeguard.as_mut(), &mut mem, LG_CORE, &mut findings);
        shard_findings.push(findings);
        streams.push(stats);
    }

    // A single-stream recording reproduces the unsharded modes' findings
    // verbatim; a sharded one merges like the sharded modes do.
    let findings = if shard_findings.len() == 1 {
        shard_findings.pop().expect("one stream")
    } else {
        merge_shard_findings(shard_findings)
    };
    Ok(ReplayReport {
        dir: dir.display().to_string(),
        codec_version,
        pipeline: ReplayReport::stream_pipeline(&streams, findings),
        streams,
        salvaged,
    })
}
