//! Remote lifeguard workers: sealed frames over real sockets, one
//! lifeguard worker per shard — the production topology for heavy
//! traffic.
//!
//! [`run_live_parallel`](crate::run_live_parallel) shards the lifeguard
//! across OS threads sharing an address space; this module keeps the
//! identical sharded pipeline but moves each shard's frame stream onto a
//! Unix-domain socket speaking the `lbas/1` wire protocol
//! ([`lba_transport::socket`]) — the shape where capture and lifeguards
//! run in different *processes* (and, with the TCP `WireStream`, on
//! different hosts). Each worker owns a full decoder, dispatch engine and
//! lifeguard instance and drives its socket exactly as replay drives a
//! recorded stream: the wire is the flight-recorder format, minus the
//! disk.
//!
//! Back-pressure crosses the wire as an explicit credit window sized from
//! [`LogConfig::live_channel_frames`](crate::LogConfig::live_channel_frames)
//! — the same budget-derived depth the in-process channels use — so
//! `buffer_bytes` semantics, [`LoadSample`]-driven adaptive degradation,
//! and the stall-timeout discipline all survive the socket hop.
//!
//! Fidelity contract: the router ([`ShardedByLine`]), per-shard record
//! order, frame boundaries, and capture pass are identical to
//! `run_live_parallel` — both drive [`Producer::sharded`] and the same
//! [`FrameEncoder`](lba_compress::FrameEncoder) per shard — so each
//! shard's wire stream is byte-identical to the in-process live mode's
//! and the merged findings are equal. `tests/remote.rs` pins both across
//! worker counts.
//!
//! Like the other sharded modes, TaintCheck is unsupported here (use
//! [`crate::run_live_taint_parallel`]); the registry's capability flags
//! enforce this through the unified [`Run`](crate::Run) entry point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use lba_cache::MemSystem;
use lba_compress::FrameDecoder;
use lba_cpu::{Machine, RunError};
use lba_isa::Program;
use lba_lifeguard::{DispatchEngine, Finding, Lifeguard};
use lba_record::EventRecord;
use lba_transport::socket::{socket_pair, SocketSender, SocketSource};
use lba_transport::{ChannelStats, FrameSource, LoadSample};

use crate::config::SystemConfig;
use crate::error::LbaError;
use crate::pipeline::{ConsumerTopology, Producer, ProducerLink, Route, ShardedByLine};
use crate::replay::ReplayError;
use crate::report::{LogStats, PipelineReport, RemoteReport};

/// The lifeguard-core MemSystem index used by every worker (shadow-cost
/// accounting only; the socket modes report no modeled clocks).
const LG_CORE: usize = 1;

/// The remote mode's [`ProducerLink`]: one credit-windowed socket sender
/// per shard, the [`ShardedByLine`] topology deciding routed-vs-broadcast
/// — the socket twin of the live mode's `LiveShardLink`.
struct RemoteShardLink<'a> {
    topology: ShardedByLine,
    senders: Vec<SocketSender>,
    finding_count: &'a AtomicU64,
}

impl ProducerLink for RemoteShardLink<'_> {
    fn ship(&mut self, rec: &EventRecord) {
        match self.topology.route(rec) {
            Route::Shard(owner) => self.senders[owner].push(rec),
            _ => {
                for tx in self.senders.iter_mut() {
                    tx.push(rec);
                }
            }
        }
    }

    fn on_engage(&mut self) {
        for tx in self.senders.iter_mut() {
            tx.flush();
            tx.set_degraded(true);
        }
    }

    fn on_disengage(&mut self) {
        for tx in self.senders.iter_mut() {
            tx.flush();
            tx.set_degraded(false);
        }
    }

    fn load_sample(&self) -> LoadSample {
        // The fullest shard's credit window — one overloaded worker is
        // what blocks the producer. Credits are absorbed at every ship,
        // so the sample is at most one frame stale.
        self.senders
            .iter()
            .map(|tx| tx.load_sample())
            .max_by_key(LoadSample::occupancy_permille)
            .unwrap_or_default()
    }

    fn finding_count(&self) -> u64 {
        self.finding_count.load(Ordering::Relaxed)
    }
}

/// Runs `program` on one thread with the lifeguard sharded `workers` ways
/// by address, each shard's sealed frames crossing a Unix-domain socket
/// (credit-windowed, `lbas/1`-framed) to its own worker thread with its
/// own decoder, dispatch engine, and lifeguard instance.
///
/// The workers here are threads for test determinism, but they speak the
/// real socket protocol end to end — handing a listener-accepted
/// [`UnixStream`](std::os::unix::net::UnixStream) (or `TcpStream`) from
/// another process to the same worker loop is deployment, not new code.
///
/// Configuration mirrors [`run_live_parallel`](crate::run_live_parallel):
/// `filter` and `syscall_stall` are ignored, `idempotency_window` and the
/// adaptive controller apply on the producer, `record_to` tees each
/// shard's stream to disk, `channel_stall_timeout` bounds how long the
/// producer parks on an exhausted credit window, and
/// `fault.drain_drag` slows the workers' drain for overload experiments.
///
/// # Errors
///
/// [`LbaError::Run`] for machine/config failures and a stalled credit
/// window ([`RunError::ChannelStalled`]); [`LbaError::Socket`] when a
/// wire tears (a worker died mid-run); [`LbaError::Replay`] when a frame
/// that crossed the wire intact fails to decode.
///
/// # Panics
///
/// Panics if `workers` is zero, or if a worker thread panics.
pub fn run_remote(
    program: &Program,
    make_lifeguard: impl Fn() -> Box<dyn Lifeguard> + Sync,
    workers: usize,
    config: &SystemConfig,
) -> Result<RemoteReport, LbaError> {
    assert!(workers > 0, "need at least one remote worker");
    config.log.validate_framing()?;
    let window = u32::try_from(config.log.live_channel_frames()).expect("window fits u32");
    let mut senders = Vec::with_capacity(workers);
    let mut sources = Vec::with_capacity(workers);
    for shard in 0..workers {
        let stream = u32::try_from(shard).expect("worker count fits u32");
        let (sink, source) = socket_pair(stream, window)?;
        let mut tx = SocketSender::new(sink, config.log.frame_config());
        tx.set_stall_timeout(config.log.channel_stall_timeout);
        // Flight recorder: one segmented stream per shard, mirrored on
        // the producer as each shard's frames ship — the recording is
        // identical to the live mode's.
        if let Some(record) = &config.log.record_to {
            tx.tee_into(crate::recorder::open_sink(record, stream)?);
        }
        senders.push(tx);
        sources.push(source);
    }
    let drag = config.log.fault.as_ref().map_or(0, |f| f.drain_drag);
    let make_lifeguard = &make_lifeguard;
    // The finding-snapback signal, published by workers exactly as the
    // in-process consumers publish theirs.
    let finding_count = AtomicU64::new(0);
    let finding_count = &finding_count;

    thread::scope(|scope| {
        let consumers: Vec<_> = sources
            .into_iter()
            .map(|source| {
                scope
                    .spawn(move || worker_loop(source, drag, make_lifeguard, config, finding_count))
            })
            .collect();

        // Produce on this thread. The link — and with it every sender —
        // drops when this closure returns, closing the sockets so the
        // workers see EOF and finish whether or not the run errored.
        let produced =
            (|| -> Result<(crate::pipeline::ProducerFinish, Vec<ChannelStats>), LbaError> {
                let mut machine = Machine::new(program, config.machine);
                let mut mem = MemSystem::new(config.mem_single());
                let seed = make_lifeguard();
                let mut producer = Producer::sharded(seed.as_ref(), config);
                drop(seed);
                let mut link = RemoteShardLink {
                    topology: ShardedByLine::new(workers),
                    senders,
                    finding_count,
                };
                machine.run(&mut mem, |r| producer.observe(&r.record, &mut link))?;
                if link.senders.iter().any(SocketSender::stalled) {
                    return Err(RunError::ChannelStalled.into());
                }
                // Snap back out of degradation, settle fold counts, ship the
                // tail, then close each stream: seal the final partial frame,
                // take the recording tee back, and write the End record.
                let finish = producer.finish(&mut link);
                let mut stalled = false;
                let mut shard_log = Vec::with_capacity(workers);
                for mut tx in link.senders.drain(..) {
                    tx.flush();
                    crate::recorder::finish_tee(tx.take_tee())?;
                    stalled |= tx.stalled();
                    shard_log.push(tx.finish()?);
                }
                if stalled {
                    return Err(RunError::ChannelStalled.into());
                }
                Ok((finish, shard_log))
            })();

        let mut shard_findings = Vec::with_capacity(workers);
        let mut worker_err: Option<LbaError> = None;
        for handle in consumers {
            match handle.join().expect("worker thread must not panic") {
                Ok(findings) => shard_findings.push(findings),
                Err(e) => {
                    worker_err.get_or_insert(e);
                }
            }
        }
        // A producer-side error explains any worker-side tear, so it wins.
        let (finish, shard_log) = produced?;
        if let Some(e) = worker_err {
            return Err(e);
        }
        let findings = crate::parallel::merge_shard_findings(shard_findings);
        Ok(RemoteReport {
            program: program.name().to_string(),
            workers,
            pipeline: PipelineReport {
                findings,
                log: LogStats::from_channels(
                    &shard_log,
                    finish.capture,
                    finish.trace.instructions(),
                ),
                capture: finish.capture,
                degradation: finish.degradation,
            },
            trace: finish.trace,
            shard_log,
        })
    })
}

/// One worker: drain the socket to its End record, decode each frame,
/// and deliver the records — structurally the replay consumer over a
/// live wire.
fn worker_loop(
    mut source: SocketSource,
    drag: u32,
    make_lifeguard: &(impl Fn() -> Box<dyn Lifeguard> + Sync),
    config: &SystemConfig,
    finding_count: &AtomicU64,
) -> Result<Vec<Finding>, LbaError> {
    let stream = source.stream_id();
    let mut decoder = FrameDecoder::new(config.log.frame_config());
    let mut lifeguard = make_lifeguard();
    let engine = DispatchEngine::new(config.dispatch);
    let mut mem = MemSystem::new(config.mem_dual());
    let mut findings = Vec::new();
    let mut batch: Vec<EventRecord> = Vec::new();
    let mut frames = 0u64;
    let mut published = 0usize;
    loop {
        // Fault injection: a worker that drains slowly, so the credit
        // window fills and the producer's LoadSample climbs.
        for _ in 0..drag {
            std::hint::spin_loop();
        }
        let bytes = match source.next_frame_bytes() {
            Ok(Some(bytes)) => bytes,
            Ok(None) => break,
            Err(e) => return Err(LbaError::from_sink(e)),
        };
        batch.clear();
        decoder
            .decode_frame(&bytes, &mut batch)
            .map_err(|source| ReplayError::Decode {
                stream,
                frame: frames,
                source,
            })?;
        frames += 1;
        engine.deliver_batch(lifeguard.as_mut(), &batch, &mut mem, LG_CORE, &mut findings);
        if findings.len() > published {
            finding_count.fetch_add((findings.len() - published) as u64, Ordering::Relaxed);
            published = findings.len();
        }
    }
    engine.finish(lifeguard.as_mut(), &mut mem, LG_CORE, &mut findings);
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::LifeguardKind;
    use crate::live_parallel::run_live_parallel;
    use lba_lifeguard::FindingKind;
    use lba_workloads::bugs;

    #[test]
    fn remote_addrcheck_detects_bugs_once() {
        let program = bugs::memory_bugs();
        let config = SystemConfig::default();
        let report =
            run_remote(&program, || LifeguardKind::AddrCheck.make_lba(), 4, &config).unwrap();
        use FindingKind::*;
        for kind in [UnallocatedAccess, DoubleFree, InvalidFree, Leak] {
            assert!(
                report.findings.iter().any(|f| f.kind == kind),
                "missing {kind} in remote run"
            );
        }
        let doubles = report
            .findings
            .iter()
            .filter(|f| f.kind == DoubleFree)
            .count();
        assert_eq!(doubles, 1, "broadcast duplicates must merge away");
    }

    #[test]
    fn per_shard_wire_streams_match_the_in_process_live_mode() {
        let program = bugs::data_race();
        let config = SystemConfig::default();
        let remote =
            run_remote(&program, || LifeguardKind::LockSet.make_lba(), 2, &config).unwrap();
        let live =
            run_live_parallel(&program, || LifeguardKind::LockSet.make_lba(), 2, &config).unwrap();
        assert_eq!(remote.shard_log.len(), live.shard_log.len());
        for (shard, (r, l)) in remote.shard_log.iter().zip(&live.shard_log).enumerate() {
            assert_eq!(
                (r.records, r.frames, r.wire_bits, r.payload_bits),
                (l.records, l.frames, l.wire_bits, l.payload_bits),
                "shard {shard} wire must be byte-identical to live-parallel"
            );
        }
        assert_eq!(remote.trace.instructions(), live.trace.instructions());
    }

    #[test]
    fn stalled_credit_window_is_a_run_error_not_a_hang() {
        // A one-frame window and a worker dragged hard enough to out-wait
        // the stall timeout: the producer must park, latch, and error.
        let program = bugs::memory_bugs();
        let mut config = SystemConfig::default();
        config.log.buffer_bytes = 64; // one-frame credit window
        config.log.records_per_frame = 8;
        config.log.channel_stall_timeout = Some(std::time::Duration::from_millis(20));
        config.log.fault = Some(lba_transport::FaultProfile {
            drain_drag: 100_000_000,
            ..lba_transport::FaultProfile::default()
        });
        let start = std::time::Instant::now();
        let err =
            run_remote(&program, || LifeguardKind::AddrCheck.make_lba(), 1, &config).unwrap_err();
        assert!(
            matches!(err, LbaError::Run(RunError::ChannelStalled)),
            "got: {err}"
        );
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "the stall must latch once, not hang"
        );
    }

    #[test]
    #[should_panic(expected = "at least one remote worker")]
    fn zero_workers_rejected() {
        let program = bugs::memory_bugs();
        let _ = run_remote(
            &program,
            || LifeguardKind::AddrCheck.make_lba(),
            0,
            &SystemConfig::default(),
        );
    }
}
