//! One error surface for every way a monitored run can fail.
//!
//! The execution modes grew up with mode-shaped errors: the machine and
//! live channels report [`RunError`], replay reports [`ReplayError`]
//! (wrapping the stream layer's [`StreamError`]), and the socket
//! transport reports [`SocketError`]. [`LbaError`] folds them into one
//! hierarchy with `From` conversions in every direction that occurs, so
//! the unified [`Run`](crate::Run) entry point — and anything driving
//! several modes, like the bench harness — propagates failures with `?`
//! and reports them uniformly, whichever layer they started in.

use std::fmt;

use lba_cpu::RunError;
use lba_record::StreamError;
use lba_transport::{SinkError, SocketError};

use crate::replay::ReplayError;

/// Any failure of a monitored run, replay, or remote deployment.
///
/// Every variant `Display`s the underlying layer's descriptive message
/// unchanged — the unification adds no indirection to what went wrong,
/// only one type to match on.
#[derive(Debug)]
pub enum LbaError {
    /// The machine, its configuration, or an in-process live channel
    /// failed (bad PC, deadlock, stalled consumer, recording I/O, ...).
    Run(RunError),
    /// An offline replay failed (damaged recording, codec mismatch,
    /// undecodable frame).
    Replay(ReplayError),
    /// The durable stream layer failed outside a replay (creating or
    /// finishing a flight-recorder stream).
    Stream(StreamError),
    /// The socket transport failed (torn wire, stalled credit window,
    /// protocol violation).
    Socket(SocketError),
    /// The requested mode/monitor combination is outside the registry's
    /// declared capabilities (e.g. sharding TaintCheck, whose register
    /// state is a sequential dependence chain).
    Unsupported {
        /// The run mode requested.
        mode: &'static str,
        /// The monitor requested.
        monitor: String,
    },
    /// The run request itself is incomplete or contradictory (e.g. a
    /// replay mode with no recording directory).
    InvalidRequest {
        /// What the request is missing or contradicting.
        detail: String,
    },
}

impl fmt::Display for LbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LbaError::Run(e) => write!(f, "{e}"),
            LbaError::Replay(e) => write!(f, "{e}"),
            LbaError::Stream(e) => write!(f, "{e}"),
            LbaError::Socket(e) => write!(f, "{e}"),
            LbaError::Unsupported { mode, monitor } => write!(
                f,
                "run mode `{mode}` does not support monitor `{monitor}` \
                 (see the capability flags in `pipeline::MONITORS`)"
            ),
            LbaError::InvalidRequest { detail } => {
                write!(f, "invalid run request: {detail}")
            }
        }
    }
}

impl std::error::Error for LbaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LbaError::Run(e) => Some(e),
            LbaError::Replay(e) => Some(e),
            LbaError::Stream(e) => Some(e),
            LbaError::Socket(e) => Some(e),
            LbaError::Unsupported { .. } | LbaError::InvalidRequest { .. } => None,
        }
    }
}

impl From<RunError> for LbaError {
    fn from(e: RunError) -> Self {
        LbaError::Run(e)
    }
}

impl From<ReplayError> for LbaError {
    fn from(e: ReplayError) -> Self {
        LbaError::Replay(e)
    }
}

impl From<StreamError> for LbaError {
    fn from(e: StreamError) -> Self {
        LbaError::Stream(e)
    }
}

impl From<SocketError> for LbaError {
    fn from(e: SocketError) -> Self {
        LbaError::Socket(e)
    }
}

impl LbaError {
    /// Folds a type-erased [`SinkError`] from the `FrameSink` /
    /// `FrameSource` seam into the hierarchy: socket and stream errors
    /// keep their own variants (and their descriptive messages); anything
    /// else lands as a recording-layer [`RunError`].
    #[must_use]
    pub fn from_sink(e: SinkError) -> Self {
        let e = match e.downcast::<SocketError>() {
            Ok(sock) => return LbaError::Socket(*sock),
            Err(e) => e,
        };
        match e.downcast::<StreamError>() {
            Ok(stream) => LbaError::Stream(*stream),
            Err(other) => LbaError::Run(RunError::Recording {
                detail: other.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_and_displays_unchanged() {
        let run: LbaError = RunError::ChannelStalled.into();
        assert_eq!(run.to_string(), RunError::ChannelStalled.to_string());

        let stream_err = StreamError::NoSuchStream {
            dir: "/tmp/none".into(),
            stream: 3,
        };
        let expect = stream_err.to_string();
        let stream: LbaError = stream_err.into();
        assert_eq!(stream.to_string(), expect);

        let replay: LbaError = ReplayError::NoStreams {
            dir: "/tmp/none".to_string(),
        }
        .into();
        assert!(replay.to_string().contains("no recorded streams"));

        let socket: LbaError = SocketError::Torn {
            endpoint: "uds:worker-2".to_string(),
            frames: 5,
        }
        .into();
        assert!(socket.to_string().contains("tore mid-stream"));
        assert!(matches!(socket, LbaError::Socket(_)));
    }

    #[test]
    fn sink_errors_recover_their_concrete_layer() {
        let sink: SinkError = Box::new(SocketError::Stalled {
            endpoint: "uds:worker-0".to_string(),
            timeout: std::time::Duration::from_millis(50),
        });
        let err = LbaError::from_sink(sink);
        assert!(matches!(err, LbaError::Socket(SocketError::Stalled { .. })));

        let sink: SinkError = Box::new(std::io::Error::other("disk gone"));
        let err = LbaError::from_sink(sink);
        assert!(matches!(err, LbaError::Run(RunError::Recording { .. })));
        assert!(err.to_string().contains("disk gone"));
    }
}
