//! Epoch-parallel lifeguards: symbolic transfer-function summaries for
//! order-sensitive lifeguards.
//!
//! Address-interleaved sharding ([`run_lba_parallel`](crate::parallel))
//! deliberately excludes TaintCheck: its register taint forms a sequential
//! dependence chain through every instruction. This module closes that gap
//! with the follow-up LBA literature's *epoch* technique:
//!
//! * the producer — [`Producer::passthrough`] driving an [`EpochRouted`]
//!   topology — cuts the record stream into contiguous **epochs** at
//!   every syscall (the natural containment point, where the log flushes
//!   anyway) and every `epoch_records` records; whole epochs fan out
//!   to `workers` workers round-robin, riding the existing framed
//!   transport — the epoch boundary is a one-bit mark in the sealed
//!   frame's wire header, so frames never straddle epochs;
//! * each **worker** consumes its epochs through the unmodified dispatch
//!   engine, but drives an
//!   [`EpochSummarizer`] instead of the
//!   concrete lifeguard: it computes a *symbolic transfer function* —
//!   per-register and per-touched-shadow-range out-state over unknown
//!   epoch-entry state, plus findings guarded by symbolic taint values —
//!   charging the same handler costs the concrete lifeguard would;
//! * a **merge** step stitches the summaries back in global epoch order,
//!   resolving each against the master's concrete state
//!   ([`EpochLifeguard::absorb`](lba_lifeguard::EpochLifeguard)). Because
//!   every summary is expressed over epoch-entry state and summaries are
//!   absorbed in order, the findings and final shadow state are
//!   byte-identical to the sequential run — proptest-pinned in
//!   `tests/epoch_taint.rs`.
//!
//! Three runners share the machinery: [`run_epoch_parallel`] (the modeled
//! mode: deterministic worker/stitch clocks, reporting the cycle-level
//! speedup), [`run_live_epoch_parallel`] (real OS threads: one producer,
//! `workers` summarizer threads, one merge thread), and
//! [`run_replay_epoch`] (offline: rebuild epochs from the recorded frame
//! marks of a live epoch run and re-stitch). Like the sharded parallel
//! study, the modeled mode isolates lifeguard-side scaling: no
//! back-pressure, syscall-stall, or line-transfer charges — compare
//! against `run_lba`'s lifeguard-bound totals. The passthrough producer
//! ships every retired record: epoch summaries are computed over the full
//! stream, so no capture filter or adaptive controller may drop records.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread;

use lba_cache::{MemSystem, MemSystemConfig};
use lba_cpu::{Machine, RunError, StepOutcome};
use lba_isa::Program;
use lba_lifeguard::{DispatchEngine, EpochLifeguard, EpochSummarizer, Finding, HandlerCtx};
use lba_lifeguards::TaintCheck;
use lba_record::{EventRecord, TraceStats};
use lba_transport::live::{shard_frame_channels, FrameReceiver};
use lba_transport::{ChannelStats, LogChannel, ModeledFrameChannel};

use crate::config::SystemConfig;
use crate::pipeline::{ConsumerTopology, EpochRouted, Producer, ProducerLink, Route};
use crate::replay::ReplayError;
use crate::report::{LogStats, PipelineReport, ReplayReport, ReplayStreamStats};

/// Per-worker channel byte budget in the modeled mode. Epochs drain as
/// their frames seal, so this bounds transport memory, not the log; like
/// the sharded study, no back-pressure is modelled.
const EPOCH_BUFFER_BYTES: u64 = 1 << 20;

/// Result of a modeled epoch-parallel run ([`run_epoch_parallel`]).
#[derive(Debug, Clone)]
pub struct EpochParallelReport {
    /// Program name.
    pub program: String,
    /// Worker (summarizer) count.
    pub workers: usize,
    /// Epochs the stream decomposed into (and the merge step stitched).
    pub epochs: u64,
    /// Application-core cycles (no back-pressure or syscall-stall charges;
    /// this mode isolates lifeguard-side scaling, like the sharded study).
    pub app_cycles: u64,
    /// Per-worker summarizer-core cycles.
    pub worker_cycles: Vec<u64>,
    /// Merge-core clock after the last summary was absorbed: each epoch's
    /// stitch starts no earlier than the previous epoch's stitch *and* the
    /// epoch's own summary completion, so this is the pipelined critical
    /// path through workers and merge.
    pub stitch_cycles: u64,
    /// End-to-end cycles: `max(app, stitch)` (the stitch clock already
    /// dominates every worker clock it waited on).
    pub total_cycles: u64,
    /// Retired-instruction statistics.
    pub trace: TraceStats,
    /// Per-worker transport statistics. Every record lands on exactly one
    /// worker (epochs partition the stream — nothing is broadcast), so the
    /// record totals sum to the sequential stream's.
    pub worker_log: Vec<ChannelStats>,
    /// The shared pipeline core: findings in program order (identical to
    /// the sequential run's), log statistics summed over the worker
    /// streams, and the (passthrough) capture ledger.
    pub pipeline: PipelineReport,
}

crate::report::deref_pipeline!(EpochParallelReport);

impl EpochParallelReport {
    /// The slowest worker's cycles.
    #[must_use]
    pub fn max_worker_cycles(&self) -> u64 {
        self.worker_cycles.iter().copied().max().unwrap_or(0)
    }
}

/// Result of a live epoch-parallel run ([`run_live_epoch_parallel`]): real
/// threads, so findings and wire statistics but no modeled clocks.
#[derive(Debug, Clone)]
pub struct LiveEpochParallelReport {
    /// Program name.
    pub program: String,
    /// Worker (summarizer) thread count.
    pub workers: usize,
    /// Epochs stitched by the merge thread.
    pub epochs: u64,
    /// Retired-instruction statistics, gathered on the producer thread.
    pub trace: TraceStats,
    /// Per-worker transport statistics, in worker order.
    pub worker_log: Vec<ChannelStats>,
    /// The shared pipeline core: findings in program order (identical to
    /// the sequential run's) plus aggregate log statistics.
    pub pipeline: PipelineReport,
}

crate::report::deref_pipeline!(LiveEpochParallelReport);

impl LiveEpochParallelReport {
    /// Records carried across all workers — exactly the shipped stream,
    /// since epochs partition it.
    #[must_use]
    pub fn total_records(&self) -> u64 {
        self.worker_log.iter().map(|s| s.records).sum()
    }

    /// Wire bits shipped across all workers.
    #[must_use]
    pub fn total_wire_bits(&self) -> u64 {
        self.worker_log.iter().map(|s| s.wire_bits).sum()
    }
}

/// One modeled worker: its channel, summarizer, clock, and the summaries
/// it has sealed (with their completion times), oldest first.
struct ModeledWorker<S: EpochSummarizer> {
    channel: ModeledFrameChannel,
    summarizer: S,
    clock: u64,
    /// Whether records arrived since the last epoch-end mark — the open
    /// tail epoch. Tracked here rather than via
    /// [`EpochSummarizer::is_open`] because the dispatch engine masks
    /// unsubscribed records before the summarizer sees them, yet the
    /// router still counts them toward the epoch.
    open: bool,
    done: VecDeque<(S::Summary, u64)>,
}

impl<S: EpochSummarizer> ModeledWorker<S> {
    /// Drains every available frame into the summarizer, sealing a
    /// summary at each epoch-end mark.
    fn drain(&mut self, engine: &DispatchEngine, mem: &mut MemSystem, core: usize) {
        // Summarizers pend findings symbolically instead of reporting, so
        // this sink stays empty; the master reports at absorb time.
        let mut no_findings = Vec::new();
        while let Some(frame) = self.channel.pop_frame() {
            self.clock = self.clock.max(frame.ready_at);
            self.open = self.open || !frame.records.is_empty();
            self.clock += engine.deliver_batch(
                &mut self.summarizer,
                frame.records,
                mem,
                core,
                &mut no_findings,
            );
            if frame.epoch_end {
                self.done
                    .push_back((self.summarizer.finish_epoch(), self.clock));
                self.open = false;
            }
        }
        debug_assert!(no_findings.is_empty(), "summarizers never report directly");
    }
}

/// The modeled epoch mode's [`ProducerLink`]: the [`EpochRouted`]
/// topology fans whole epochs out to the modeled workers, each ship
/// opportunistically drains sealed frames into the owning summarizer, and
/// the merge core stitches completed summaries into the master in global
/// epoch order as soon as they become available.
struct EpochModelLink<'m, E: EpochLifeguard> {
    topology: EpochRouted,
    pool: Vec<ModeledWorker<E::Summarizer>>,
    engine: DispatchEngine,
    mem: MemSystem,
    master: &'m mut E,
    merge_core: usize,
    findings: Vec<Finding>,
    app_cycles: u64,
    stitch_clock: u64,
    next_epoch: u64,
}

impl<E: EpochLifeguard> EpochModelLink<'_, E> {
    /// Absorbs every summary that is next in global epoch order.
    fn stitch(&mut self) {
        loop {
            let w = (self.next_epoch % self.pool.len() as u64) as usize;
            let Some((summary, t_done)) = self.pool[w].done.pop_front() else {
                break;
            };
            self.stitch_clock = self.stitch_clock.max(t_done);
            let mut ctx = HandlerCtx::new(&mut self.mem, self.merge_core, &mut self.findings);
            self.master.absorb(summary, &mut ctx);
            self.stitch_clock += ctx.cycles();
            self.next_epoch += 1;
        }
    }
}

impl<E: EpochLifeguard> ProducerLink for EpochModelLink<'_, E> {
    fn ship(&mut self, rec: &EventRecord) {
        match self.topology.route(rec) {
            Route::Epoch { worker, end_epoch } => {
                self.pool[worker]
                    .channel
                    .push_record_epoch(rec, self.app_cycles, end_epoch);
                self.pool[worker].drain(&self.engine, &mut self.mem, 1 + worker);
                self.stitch();
            }
            _ => unreachable!("EpochRouted only yields epoch routes"),
        }
    }
}

/// Runs `program` under the modeled epoch-parallel pipeline: `master` is
/// the concrete lifeguard (it ends the run holding the same state a
/// sequential run would), `workers` summarizers consume whole epochs
/// round-robin, and the merge core stitches their summaries in epoch
/// order.
///
/// The clock model: worker cycles follow the ordinary dispatch charges
/// over each worker's frames (a frame is consumable once shipped, so the
/// worker clock first catches up to the frame's `ready_at`); each epoch's
/// absorb on the merge core starts at
/// `max(previous stitch, this epoch's summary completion)` and costs the
/// resolve/apply work [`EpochLifeguard::absorb`] charges. End-to-end time
/// is `max(app, stitch)`.
///
/// Epoch boundaries come from [`LogConfig::epoch_records`](crate::LogConfig)
/// and syscalls; see [`EpochRouted`].
///
/// New code driving [`TaintCheck`] should prefer the unified
/// [`Run`](crate::Run) builder (`RunMode::EpochParallel`); this generic
/// function remains the entry point for custom [`EpochLifeguard`]s.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine.
///
/// # Panics
///
/// Panics if `workers` or `config.log.epoch_records` is zero.
pub fn run_epoch_parallel<E: EpochLifeguard>(
    program: &Program,
    master: &mut E,
    workers: usize,
    config: &SystemConfig,
) -> Result<EpochParallelReport, RunError> {
    assert!(workers > 0, "need at least one epoch worker");
    config.log.validate_framing()?;
    let mut machine = Machine::new(program, config.machine);
    let mut pool: Vec<ModeledWorker<E::Summarizer>> = (0..workers)
        .map(|_| ModeledWorker {
            channel: if config.log.batch_dispatch {
                ModeledFrameChannel::zero_copy(EPOCH_BUFFER_BYTES, config.log.frame_config(), false)
            } else {
                ModeledFrameChannel::new(EPOCH_BUFFER_BYTES, config.log.frame_config(), false)
            },
            summarizer: master.summarizer(),
            clock: 0,
            open: false,
            done: VecDeque::new(),
        })
        .collect();
    // Flight recorder: one segmented stream per worker, so replay can
    // rebuild each worker's epoch sequence from the recorded frame marks.
    if let Some(record) = &config.log.record_to {
        for (idx, worker) in pool.iter_mut().enumerate() {
            let stream = u32::try_from(idx).expect("worker count fits u32");
            worker
                .channel
                .tee_into(crate::recorder::open_sink(record, stream)?);
        }
    }

    // The passthrough producer: every retired record ships (summaries are
    // computed over the full stream), so no filter or controller.
    let mut producer = Producer::passthrough();
    let mut link = EpochModelLink::<E> {
        topology: EpochRouted::new(workers, config.log.epoch_records),
        pool,
        engine: DispatchEngine::new(config.dispatch),
        // Core 0: application. Cores 1..=workers: summarizers. Last: merge.
        mem: MemSystem::new(MemSystemConfig::multi_core(workers + 2)),
        master,
        merge_core: workers + 1,
        findings: Vec::new(),
        app_cycles: 0,
        stitch_clock: 0,
        next_epoch: 0,
    };

    loop {
        match machine.step(&mut link.mem)? {
            StepOutcome::Finished => break,
            StepOutcome::Retired(r) => {
                link.app_cycles += r.cycles;
                producer.observe(&r.record, &mut link);
            }
        }
    }
    let finish = producer.finish(&mut link);

    // End of program: the tail epoch (if open) ships via a plain unmarked
    // flush; its worker finalises the dangling summary after draining.
    let app_cycles = link.app_cycles;
    for idx in 0..workers {
        link.pool[idx].channel.flush(app_cycles);
        let worker = &mut link.pool[idx];
        worker.drain(&link.engine, &mut link.mem, 1 + idx);
        if worker.open || worker.summarizer.is_open() {
            worker
                .done
                .push_back((worker.summarizer.finish_epoch(), worker.clock));
            worker.open = false;
        }
    }
    link.stitch();
    debug_assert_eq!(
        link.next_epoch,
        link.topology.epochs(),
        "every epoch stitched"
    );
    let mut findings = link.findings;
    let mut stitch_clock = link.stitch_clock;
    stitch_clock += link
        .engine
        .finish(link.master, &mut link.mem, link.merge_core, &mut findings);

    // Close each worker's flight recording (End records + flush).
    for worker in &mut link.pool {
        crate::recorder::finish_tee(worker.channel.take_tee())?;
    }

    let worker_cycles: Vec<u64> = link.pool.iter().map(|w| w.clock).collect();
    let worker_log: Vec<ChannelStats> = link.pool.iter().map(|w| w.channel.stats()).collect();
    let total_cycles = app_cycles.max(stitch_clock);
    Ok(EpochParallelReport {
        program: program.name().to_string(),
        workers,
        epochs: link.topology.epochs(),
        app_cycles,
        worker_cycles,
        stitch_cycles: stitch_clock,
        total_cycles,
        pipeline: PipelineReport {
            findings,
            log: LogStats::from_channels(&worker_log, finish.capture, finish.trace.instructions()),
            capture: finish.capture,
            degradation: finish.degradation,
        },
        trace: finish.trace,
        worker_log,
    })
}

/// The live epoch mode's [`ProducerLink`]: the [`EpochRouted`] topology
/// fans whole epochs out over one framed SPSC sender per worker thread,
/// with the epoch-end mark riding the sealed frame's wire header.
struct LiveEpochLink {
    topology: EpochRouted,
    senders: Vec<lba_transport::live::FrameSender>,
}

impl ProducerLink for LiveEpochLink {
    fn ship(&mut self, rec: &EventRecord) {
        match self.topology.route(rec) {
            Route::Epoch { worker, end_epoch } => self.senders[worker].push_epoch(rec, end_epoch),
            _ => unreachable!("EpochRouted only yields epoch routes"),
        }
    }
}

/// Runs `program` under the live epoch-parallel pipeline: the producer
/// thread runs the machine and fans whole epochs out to `workers`
/// summarizer threads (each decoding its own compressed frame stream);
/// a merge thread stitches the summaries into `master` in global epoch
/// order — epochs go round-robin, so the merge polls the worker summary
/// queues round-robin and stops at the first disconnect (a closed worker
/// can hold no later epoch).
///
/// Functional, not timed (like the other live modes); findings and final
/// master state are byte-identical to the sequential run.
///
/// New code driving [`TaintCheck`] should prefer the unified
/// [`Run`](crate::Run) builder (`RunMode::LiveEpochParallel`); this
/// generic function remains the entry point for custom
/// [`EpochLifeguard`]s.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine thread.
///
/// # Panics
///
/// Panics if `workers` or `config.log.epoch_records` is zero, or if a
/// worker or merge thread panics (a codec or lifeguard bug).
pub fn run_live_epoch_parallel<E>(
    program: &Program,
    master: &mut E,
    workers: usize,
    config: &SystemConfig,
) -> Result<LiveEpochParallelReport, RunError>
where
    E: EpochLifeguard + Send,
{
    assert!(workers > 0, "need at least one epoch worker");
    config.log.validate_framing()?;
    let (mut senders, receivers) = shard_frame_channels(
        workers,
        config.log.live_channel_frames(),
        config.log.frame_config(),
    );
    if let Some(record) = &config.log.record_to {
        for (idx, tx) in senders.iter_mut().enumerate() {
            let stream = u32::try_from(idx).expect("worker count fits u32");
            tx.tee_into(crate::recorder::open_sink(record, stream)?);
        }
    }
    let summarizers: Vec<E::Summarizer> = (0..workers).map(|_| master.summarizer()).collect();
    let (sum_txs, sum_rxs): (Vec<_>, Vec<_>) = (0..workers).map(|_| mpsc::channel()).unzip();
    let engine = DispatchEngine::new(config.dispatch);

    thread::scope(|scope| {
        let consumers: Vec<_> = receivers
            .into_iter()
            .zip(summarizers)
            .zip(sum_txs)
            .map(|((mut rx, mut summarizer), sum_tx)| {
                let engine = &engine;
                let config = &*config;
                scope.spawn(move || -> ChannelStats {
                    let mut mem = MemSystem::new(config.mem_dual());
                    let mut no_findings = Vec::new();
                    // Tail-epoch openness is tracked over *all* records
                    // (the dispatch engine masks unsubscribed kinds before
                    // the summarizer counts them, yet the router counts
                    // every record toward the epoch).
                    let mut open = false;
                    epoch_consume(&mut rx, |records, epoch_end| {
                        open = open || !records.is_empty();
                        engine.deliver_batch(
                            &mut summarizer,
                            records,
                            &mut mem,
                            1,
                            &mut no_findings,
                        );
                        if epoch_end {
                            let _ = sum_tx.send(summarizer.finish_epoch());
                            open = false;
                        }
                    });
                    // The stream tail ships unmarked: finalise the open
                    // epoch once the channel closes.
                    if open || summarizer.is_open() {
                        let _ = sum_tx.send(summarizer.finish_epoch());
                    }
                    debug_assert!(no_findings.is_empty(), "summarizers never report");
                    rx.stats()
                })
            })
            .collect();

        let merge = {
            let master = &mut *master;
            let engine = &engine;
            let config = &*config;
            scope.spawn(move || -> (Vec<Finding>, u64) {
                let mut mem = MemSystem::new(config.mem_dual());
                let mut findings = Vec::new();
                let mut epochs = 0u64;
                loop {
                    // Epochs are contiguous round-robin: a disconnect at
                    // epoch `e` means worker `e % workers` is done, and it
                    // would have carried every later epoch's predecessor
                    // slot — no epoch ≥ e exists anywhere.
                    let Ok(summary) = sum_rxs[(epochs % workers as u64) as usize].recv() else {
                        break;
                    };
                    let mut ctx = HandlerCtx::new(&mut mem, 1, &mut findings);
                    master.absorb(summary, &mut ctx);
                    epochs += 1;
                }
                engine.finish(master, &mut mem, 1, &mut findings);
                (findings, epochs)
            })
        };

        // Produce on this thread: run the machine and fan epochs out. The
        // link — and every sender — drops when this closure returns,
        // closing the worker streams so the consumers and merge finish
        // whether or not the run errored.
        let produced = (|| -> Result<crate::pipeline::ProducerFinish, RunError> {
            let mut machine = Machine::new(program, config.machine);
            let mut mem = MemSystem::new(config.mem_single());
            let mut producer = Producer::passthrough();
            let mut link = LiveEpochLink {
                topology: EpochRouted::new(workers, config.log.epoch_records),
                senders,
            };
            machine.run(&mut mem, |r| producer.observe(&r.record, &mut link))?;
            let finish = producer.finish(&mut link);
            for tx in link.senders.iter_mut() {
                tx.flush();
                crate::recorder::finish_tee(tx.take_tee())?;
            }
            Ok(finish)
        })();

        let worker_log: Vec<ChannelStats> = consumers
            .into_iter()
            .map(|h| h.join().expect("worker thread must not panic"))
            .collect();
        let (findings, epochs) = merge.join().expect("merge thread must not panic");
        let finish = produced?;
        Ok(LiveEpochParallelReport {
            program: program.name().to_string(),
            workers,
            epochs,
            pipeline: PipelineReport {
                findings,
                log: LogStats::from_channels(
                    &worker_log,
                    finish.capture,
                    finish.trace.instructions(),
                ),
                capture: finish.capture,
                degradation: finish.degradation,
            },
            trace: finish.trace,
            worker_log,
        })
    })
}

/// Drives one live worker's receive loop: whole frames with their
/// epoch-end marks, until the channel closes.
fn epoch_consume(rx: &mut FrameReceiver, mut consume: impl FnMut(&[EventRecord], bool)) {
    while let Some((records, epoch_end)) = rx.recv_batch_epoch() {
        consume(records, epoch_end);
    }
}

/// Replays a recorded epoch-parallel stream set (one stream per worker,
/// left behind by [`run_epoch_parallel`] or [`run_live_epoch_parallel`]
/// with [`LogConfig::record_to`](crate::LogConfig) set) through a fresh
/// epoch pipeline: each stream's frames are decoded in order and cut back
/// into epochs at the recorded frame marks (a stream tail with no closing
/// mark is the run's final, open epoch), then the summaries are stitched
/// into `master` in global epoch order — worker count equals stream
/// count, epochs round-robin, exactly as they were recorded. This is the
/// [`ReplaySource`](crate::pipeline::ReplaySource) topology: the recorded
/// streams *are* the producer.
///
/// Findings and final `master` state are byte-identical to the recording
/// run's (and therefore to the sequential run's).
///
/// New code driving [`TaintCheck`] should prefer the unified
/// [`Run`](crate::Run) builder (`RunMode::ReplayEpoch`); this generic
/// function remains the entry point for custom [`EpochLifeguard`]s.
///
/// # Errors
///
/// See [`ReplayError`]: stream-layer damage, a codec-version mismatch, or
/// a frame that fails to decode.
pub fn run_replay_epoch<E: EpochLifeguard>(
    dir: impl AsRef<std::path::Path>,
    master: &mut E,
    config: &SystemConfig,
) -> Result<ReplayReport, ReplayError> {
    use lba_compress::{Frame, FrameDecoder, CODEC_VERSION};
    use lba_record::{stream_ids, SegmentReader};

    let dir = dir.as_ref();
    let ids = stream_ids(dir)?;
    if ids.is_empty() {
        return Err(ReplayError::NoStreams {
            dir: dir.display().to_string(),
        });
    }

    let engine = DispatchEngine::new(config.dispatch);
    let mut mem = MemSystem::new(config.mem_dual());
    let mut codec_version = CODEC_VERSION;
    let mut queues: Vec<VecDeque<<E::Summarizer as EpochSummarizer>::Summary>> =
        Vec::with_capacity(ids.len());
    let mut streams = Vec::with_capacity(ids.len());
    let mut no_findings = Vec::new();
    for &stream in &ids {
        let mut reader = SegmentReader::open(dir, stream)?;
        if reader.codec_version() != CODEC_VERSION {
            return Err(ReplayError::CodecMismatch {
                stream,
                recorded: reader.codec_version(),
                running: CODEC_VERSION,
            });
        }
        codec_version = reader.codec_version();

        let mut decoder = FrameDecoder::new(config.log.frame_config());
        let mut summarizer = master.summarizer();
        let mut batch: Vec<EventRecord> = Vec::new();
        let mut done = VecDeque::new();
        // As in the other runners: openness over all records, since the
        // dispatch mask hides unsubscribed kinds from the summarizer.
        let mut open = false;
        let mut stats = ReplayStreamStats {
            stream,
            frames: 0,
            records: 0,
            wire_bits: 0,
            degraded_frames: 0,
        };
        while let Some(frame) = reader.next_frame()? {
            batch.clear();
            decoder
                .decode_frame(&frame.bytes, &mut batch)
                .map_err(|source| ReplayError::Decode {
                    stream,
                    frame: stats.frames,
                    source,
                })?;
            open = open || !batch.is_empty();
            engine.deliver_batch(&mut summarizer, &batch, &mut mem, 1, &mut no_findings);
            if Frame::header_epoch_end(&frame.bytes) {
                done.push_back(summarizer.finish_epoch());
                open = false;
            }
            stats.frames += 1;
            stats.records += batch.len() as u64;
            stats.wire_bits += frame.wire_bits();
            if Frame::header_degraded(&frame.bytes) {
                stats.degraded_frames += 1;
            }
        }
        if open || summarizer.is_open() {
            done.push_back(summarizer.finish_epoch());
        }
        queues.push(done);
        streams.push(stats);
    }
    debug_assert!(no_findings.is_empty(), "summarizers never report");

    // Stitch in global epoch order: epochs went to streams round-robin.
    let mut findings = Vec::new();
    let mut epoch = 0u64;
    loop {
        let w = (epoch % queues.len() as u64) as usize;
        let Some(summary) = queues[w].pop_front() else {
            break;
        };
        let mut ctx = HandlerCtx::new(&mut mem, 1, &mut findings);
        master.absorb(summary, &mut ctx);
        epoch += 1;
    }
    debug_assert!(
        queues.iter().all(VecDeque::is_empty),
        "round-robin stitch must drain every stream"
    );
    engine.finish(master, &mut mem, 1, &mut findings);
    Ok(ReplayReport {
        dir: dir.display().to_string(),
        codec_version,
        pipeline: ReplayReport::stream_pipeline(&streams, findings),
        streams,
        salvaged: Vec::new(),
    })
}

/// [`run_epoch_parallel`] instantiated for [`TaintCheck`] — the DIFT
/// lifeguard the epoch technique was built for. Returns the report; use
/// the generic runner with your own `TaintCheck` master to inspect final
/// taint state.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine.
pub fn run_taint_parallel(
    program: &Program,
    workers: usize,
    config: &SystemConfig,
) -> Result<EpochParallelReport, RunError> {
    // Equivalent to `Run::new(program).mode(RunMode::EpochParallel)
    //     .monitor(LifeguardKind::TaintCheck)`, which new code should
    // prefer; kept as the registry hooks' direct entry point.
    let mut master = TaintCheck::new();
    run_epoch_parallel(program, &mut master, workers, config)
}

/// [`run_live_epoch_parallel`] instantiated for [`TaintCheck`].
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine thread.
pub fn run_live_taint_parallel(
    program: &Program,
    workers: usize,
    config: &SystemConfig,
) -> Result<LiveEpochParallelReport, RunError> {
    // Equivalent to `Run::new(program).mode(RunMode::LiveEpochParallel)
    //     .monitor(LifeguardKind::TaintCheck)`, which new code should
    // prefer; kept as the registry hooks' direct entry point.
    let mut master = TaintCheck::new();
    run_live_epoch_parallel(program, &mut master, workers, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::run_lba;
    use lba_lifeguard::FindingKind;
    use lba_workloads::{bugs, Benchmark};

    #[test]
    fn epoch_parallel_taint_matches_sequential_on_the_exploit() {
        let program = bugs::exploit();
        let config = SystemConfig::default();
        let mut seq = TaintCheck::new();
        let sequential = run_lba(&program, &mut seq, &config).unwrap();
        for workers in [1, 3] {
            let mut master = TaintCheck::new();
            let report = run_epoch_parallel(&program, &mut master, workers, &config).unwrap();
            assert_eq!(report.findings, sequential.findings, "workers={workers}");
            assert_eq!(
                master.tainted_bytes_introduced(),
                seq.tainted_bytes_introduced()
            );
            assert!(report
                .findings
                .iter()
                .any(|f| f.kind == FindingKind::TaintedJump));
        }
    }

    #[test]
    fn epoch_workers_split_the_record_stream_exactly() {
        let program = Benchmark::Gzip.build();
        let config = SystemConfig::default();
        let mut seq = TaintCheck::new();
        let sequential = run_lba(&program, &mut seq, &config).unwrap();
        let report = run_taint_parallel(&program, 4, &config).unwrap();
        // Epochs partition the stream: no broadcast, no duplication.
        assert_eq!(report.log.records, sequential.log.records);
        assert!(report.epochs >= 2, "gzip must decompose into epochs");
        assert_eq!(report.worker_log.len(), 4);
    }

    #[test]
    fn modeled_epoch_speedup_scales_with_workers() {
        let program = Benchmark::Gzip.build();
        let mut config = SystemConfig::default();
        config.log.epoch_records = 256;
        let one = run_taint_parallel(&program, 1, &config).unwrap();
        let four = run_taint_parallel(&program, 4, &config).unwrap();
        assert_eq!(one.findings, four.findings);
        let speedup = one.total_cycles as f64 / four.total_cycles as f64;
        assert!(
            speedup >= 1.5,
            "4 workers ({}) vs 1 ({}): {speedup:.2}x",
            four.total_cycles,
            one.total_cycles
        );
    }

    #[test]
    fn live_epoch_taint_matches_sequential() {
        let program = bugs::exploit();
        let config = SystemConfig::default();
        let mut seq = TaintCheck::new();
        let sequential = run_lba(&program, &mut seq, &config).unwrap();
        let mut master = TaintCheck::new();
        let report = run_live_epoch_parallel(&program, &mut master, 3, &config).unwrap();
        assert_eq!(report.findings, sequential.findings);
        assert_eq!(
            master.tainted_bytes_introduced(),
            seq.tainted_bytes_introduced()
        );
        assert_eq!(report.total_records(), sequential.log.records);
    }

    #[test]
    #[should_panic(expected = "at least one epoch worker")]
    fn zero_workers_rejected() {
        let program = bugs::exploit();
        let _ = run_taint_parallel(&program, 0, &SystemConfig::default());
    }
}
