//! Minimal text-table rendering for experiment output.

use std::fmt;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use lba::table::TextTable;
///
/// let mut t = TextTable::new(["benchmark", "slowdown"]);
/// t.row(["gzip", "3.4x"]);
/// let s = t.to_string();
/// assert!(s.contains("benchmark"));
/// assert!(s.contains("gzip"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:width$}")?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer-name", "2"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The value column starts at the same offset in every data row.
        let offset = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find('2').unwrap(), offset);
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new(["a"]);
        t.row(["x", "extra"]);
        t.row::<[&str; 0], &str>([]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains("extra"));
    }
}
