//! System configuration.

use std::path::PathBuf;
use std::time::Duration;

use lba_cache::MemSystemConfig;
use lba_compress::FrameConfig;
use lba_cpu::MachineConfig;
use lba_dbi::DbiConfig;
use lba_lifeguard::{
    AddrRangeFilter, CaptureFilter, DegradationPolicy, DispatchConfig, IdempotencyClass,
};
use lba_record::StreamConfig;
use lba_transport::FaultProfile;

use crate::controller::AdaptiveConfig;

/// Where (and under what bounds) a run records its sealed wire frames as
/// a durable `lbas/1` flight-recorder stream — set [`LogConfig::record_to`]
/// to enable recording in any of the four run modes.
///
/// The single-stream modes (`run_lba`, `run_live`) write stream 0; the
/// sharded modes write one stream per shard, all into the same directory.
/// `lba_core::run_replay` later replays the directory through any
/// lifeguard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordConfig {
    /// Recording directory, created if missing. Segments are named
    /// `shard-SS.NNNNNN.lbas` inside it.
    pub dir: PathBuf,
    /// Rotate to a new segment file past this many bytes.
    pub segment_bytes: u64,
    /// Delete the oldest closed segments once a stream's total on-disk
    /// bytes exceed this cap (`u64::MAX` retains everything; replay needs
    /// the full stream).
    pub retain_bytes: u64,
}

impl RecordConfig {
    /// Records into `dir` with the default segment size and unbounded
    /// retention (everything kept, so the run stays replayable).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let stream = StreamConfig::default();
        RecordConfig {
            dir: dir.into(),
            segment_bytes: stream.segment_bytes,
            retain_bytes: stream.retain_bytes,
        }
    }

    /// The stream-layer knobs this configuration implies.
    #[must_use]
    pub fn stream_config(&self) -> StreamConfig {
        StreamConfig {
            segment_bytes: self.segment_bytes,
            retain_bytes: self.retain_bytes,
        }
    }
}

/// Ceiling on the live channel queue depth derived by
/// [`LogConfig::live_channel_frames`] — the queues are allocated eagerly,
/// so the depth must stay bounded no matter the byte budget. At the
/// default frame size this is ~6.3 MiB of in-flight wire per channel,
/// far past the point where back-pressure has any effect.
pub const MAX_LIVE_CHANNEL_FRAMES: usize = 1024;

/// Configuration of the log pipeline (capture → compress → buffer →
/// dispatch).
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Log buffer capacity in bytes (a region carried by the cache
    /// hierarchy in the paper's design).
    pub buffer_bytes: u64,
    /// Whether the VPC compression engine is enabled (ablation C turns it
    /// off to show the bandwidth pressure of a raw log).
    pub compression: bool,
    /// Records batched into one transport frame before it ships (a frame
    /// seals early at syscalls and end of program). Larger frames amortise
    /// the 8-byte header and cache-line padding over more records; smaller
    /// frames bound the lifeguard's lag more tightly.
    pub records_per_frame: usize,
    /// Shared-L2 occupancy cycles charged per 64-byte line of log data
    /// moved (written by the capture engine, read by the dispatch engine).
    pub line_transfer_cycles: u64,
    /// Whether the OS stalls each application syscall until the lifeguard
    /// drains the preceding log entries (§2 containment policy).
    pub syscall_stall: bool,
    /// Whether the application and lifeguard cores run decoupled. When
    /// `false` the application waits for the lifeguard after *every*
    /// record (the lock-step ablation).
    pub decoupled: bool,
    /// Whether the lifeguard consumes the log frame-at-a-time
    /// ([`LogChannel::pop_frame`](lba_transport::LogChannel::pop_frame) +
    /// `DispatchEngine::deliver_batch`) instead of record-at-a-time. Both
    /// paths produce identical findings, wire bits and modeled cycle
    /// totals; the per-record path is kept as the throughput-benchmark
    /// baseline (`false`).
    pub batch_dispatch: bool,
    /// Optional capture-side address-range filter (§3 future work).
    pub filter: Option<AddrRangeFilter>,
    /// Entries in the capture-side idempotency window that suppresses
    /// duplicate load/store records under the lifeguard's declared
    /// soundness contract
    /// ([`Lifeguard::idempotency`](lba_lifeguard::Lifeguard::idempotency)).
    /// Rounded up to a power of two and clamped to
    /// [`MAX_WINDOW_ENTRIES`](lba_lifeguard::MAX_WINDOW_ENTRIES) — the
    /// window is allocated eagerly, like the live channel queues; `0`
    /// (the default) disables the window, degenerating bit-for-bit to
    /// the unfiltered pipeline. A lifeguard declaring
    /// [`IdempotencyClass::None`](lba_lifeguard::IdempotencyClass::None)
    /// is never filtered regardless of this setting.
    pub idempotency_window: usize,
    /// Record-count cap per epoch in the epoch-parallel modes
    /// ([`run_epoch_parallel`](crate::run_epoch_parallel) and friends):
    /// an epoch closes at every syscall — the natural containment
    /// boundary, where the log is flushed anyway — and additionally after
    /// this many records, so long syscall-free stretches still
    /// parallelise. Smaller epochs expose more parallelism but pay more
    /// per-epoch summary/stitch overhead. Ignored by every other mode.
    pub epoch_records: usize,
    /// Validate compressor/decompressor round-trip at end of run
    /// (test/debug aid; costs memory proportional to the trace).
    pub verify_compression: bool,
    /// When set, the run mirrors every sealed wire frame into a durable
    /// segmented stream under this recording configuration (the flight
    /// recorder). `None` (the default) records nothing.
    pub record_to: Option<RecordConfig>,
    /// When set, the producer runs the adaptive capture controller
    /// ([`CaptureController`](crate::CaptureController)): transport
    /// occupancy past the configured threshold degrades capture along
    /// exactly the axes the lifeguard's
    /// [`DegradationPolicy`](lba_lifeguard::DegradationPolicy) permits,
    /// and every degraded span is accounted in the report's
    /// [`DegradationStats`](lba_lifeguard::DegradationStats). `None`
    /// (the default) keeps the pipeline bit-for-bit identical to a
    /// controller-free build; so does any setting when the lifeguard's
    /// policy is [`DegradationPolicy::none`](lba_lifeguard::DegradationPolicy::none).
    pub adaptive: Option<AdaptiveConfig>,
    /// When set, the run's transport is wrapped in a deterministic
    /// [`FaultInjector`](lba_transport::FaultInjector) reproducing this
    /// profile (consumer stalls, slow drain, flaky sink). `None` (the
    /// default) injects nothing and adds no wrapper overhead beyond a
    /// pass-through branch.
    pub fault: Option<FaultProfile>,
    /// How long the live producer may spin on a full channel before it
    /// latches a stall and the run fails with
    /// [`RunError::ChannelStalled`](lba_cpu::RunError::ChannelStalled)
    /// instead of spinning forever on a wedged consumer. `None` (the
    /// default) preserves the original unbounded-spin behaviour. Only
    /// the live modes consult it; the modeled transport has no wall
    /// clock.
    pub channel_stall_timeout: Option<Duration>,
}

impl LogConfig {
    /// The frame-codec parameters this log configuration implies (shared
    /// by the modeled and live transports).
    #[must_use]
    pub fn frame_config(&self) -> FrameConfig {
        FrameConfig {
            records_per_frame: self.records_per_frame,
            compress: self.compression,
        }
    }

    /// Frames the live SPSC queue may hold before the producer blocks —
    /// the live analogue of the modeled buffer's byte budget: the depth at
    /// which `buffer_bytes` worth of nominal (raw-encoded, line-padded)
    /// frames fills the queue, but always at least one frame so every
    /// configuration can make progress.
    ///
    /// The depth is capped at [`MAX_LIVE_CHANNEL_FRAMES`]: unlike the
    /// modeled buffer, whose budget is pure accounting, the live channel
    /// eagerly allocates two queues of this depth per shard, so an
    /// astronomical `buffer_bytes` must not translate into an
    /// astronomical allocation.
    ///
    /// Shared by `run_live` (one channel) and `run_live_parallel` (one
    /// channel per shard), so shrinking `buffer_bytes` tightens live
    /// back-pressure the same way it does in the co-simulation.
    #[must_use]
    pub fn live_channel_frames(&self) -> usize {
        let frame_bytes = self.frame_config().nominal_wire_bytes() as u64;
        usize::try_from(self.buffer_bytes / frame_bytes)
            .unwrap_or(usize::MAX)
            .clamp(1, MAX_LIVE_CHANNEL_FRAMES)
    }

    /// The single capture-pass predicate for the single-lifeguard modes:
    /// the address-range filter composed with the idempotency window
    /// under the lifeguard's declared `class`. `run_lba` and `run_live`
    /// build their filter here so the two cannot drift.
    #[must_use]
    pub fn capture_filter(&self, class: IdempotencyClass) -> CaptureFilter {
        CaptureFilter::new(self.filter.clone(), self.idempotency_window, class)
    }

    /// The reserve capacity the capture filter's window may widen to
    /// under adaptive degradation: the configured `widen_entries` when
    /// `adaptive` is set *and* the lifeguard's policy permits widening,
    /// zero (no reserve, bit-for-bit the plain filter) otherwise.
    fn widen_entries(&self, policy: &DegradationPolicy) -> usize {
        match &self.adaptive {
            Some(adaptive) if policy.widen_window => adaptive.widen_entries,
            _ => 0,
        }
    }

    /// [`capture_filter`](Self::capture_filter) with the widen reserve
    /// the adaptive controller needs for this lifeguard's degradation
    /// policy. Degenerates to the plain filter whenever `adaptive` is
    /// unset or the policy forbids widening.
    #[must_use]
    pub fn adaptive_capture_filter(
        &self,
        class: IdempotencyClass,
        policy: &DegradationPolicy,
    ) -> CaptureFilter {
        CaptureFilter::with_widen(
            self.filter.clone(),
            self.idempotency_window,
            self.widen_entries(policy),
            class,
        )
    }

    /// [`shard_capture_filter`](Self::shard_capture_filter) with the
    /// widen reserve for the sharded modes.
    #[must_use]
    pub fn adaptive_shard_capture_filter(
        &self,
        class: IdempotencyClass,
        policy: &DegradationPolicy,
    ) -> CaptureFilter {
        CaptureFilter::with_widen(
            None,
            self.idempotency_window,
            self.widen_entries(policy),
            class,
        )
    }

    /// The capture filter for the sharded modes, which mirror the modeled
    /// parallel study and deliberately ignore the address-range filter
    /// (see `run_lba_parallel`) but do run the idempotency window — the
    /// suppression happens before routing, so both sharded modes ship
    /// identical per-shard streams.
    #[must_use]
    pub fn shard_capture_filter(&self, class: IdempotencyClass) -> CaptureFilter {
        CaptureFilter::new(None, self.idempotency_window, class)
    }

    /// Validates the transport-related fields, returning a descriptive
    /// error instead of letting the codec panic deeper in the pipeline.
    ///
    /// # Errors
    ///
    /// [`RunError::ZeroRecordsPerFrame`](lba_cpu::RunError::ZeroRecordsPerFrame)
    /// when `records_per_frame` is zero.
    pub fn validate_framing(&self) -> Result<(), lba_cpu::RunError> {
        if self.records_per_frame == 0 {
            return Err(lba_cpu::RunError::ZeroRecordsPerFrame);
        }
        Ok(())
    }
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            buffer_bytes: 64 << 10,
            compression: true,
            records_per_frame: 256,
            line_transfer_cycles: 4,
            syscall_stall: true,
            decoupled: true,
            batch_dispatch: true,
            filter: None,
            idempotency_window: 0,
            epoch_records: 1024,
            verify_compression: false,
            record_to: None,
            adaptive: None,
            fault: None,
            channel_stall_timeout: None,
        }
    }
}

/// Top-level configuration shared by all three execution models.
///
/// # Examples
///
/// ```
/// use lba::SystemConfig;
///
/// let mut config = SystemConfig::default();
/// config.log.buffer_bytes = 8 << 10; // small buffer: more back-pressure
/// assert!(config.log.compression);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SystemConfig {
    /// CPU/runtime model (quantum, heap size, runtime-event costs).
    pub machine: MachineConfig,
    /// Log pipeline parameters.
    pub log: LogConfig,
    /// Lifeguard-core dispatch cycle model.
    pub dispatch: DispatchConfig,
    /// DBI baseline cycle model.
    pub dbi: DbiConfig,
}

impl SystemConfig {
    /// Memory-system geometry for the unmonitored and DBI runs (one core).
    #[must_use]
    pub fn mem_single(&self) -> MemSystemConfig {
        MemSystemConfig::single_core()
    }

    /// Memory-system geometry for the LBA run (application + lifeguard).
    #[must_use]
    pub fn mem_dual(&self) -> MemSystemConfig {
        MemSystemConfig::dual_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = SystemConfig::default();
        assert_eq!(c.log.buffer_bytes, 64 << 10);
        assert!(c.log.compression);
        assert_eq!(c.log.records_per_frame, 256);
        assert!(c.log.syscall_stall);
        assert!(c.log.decoupled);
        assert!(
            c.log.batch_dispatch,
            "frame-granular dispatch is the default"
        );
        assert_eq!(c.log.idempotency_window, 0, "capture-side dedup is opt-in");
        assert_eq!(c.log.epoch_records, 1024);
        assert!(c.log.record_to.is_none(), "flight recording is opt-in");
        assert!(c.log.adaptive.is_none(), "adaptive capture is opt-in");
        assert!(c.log.fault.is_none(), "fault injection is opt-in");
        assert!(
            c.log.channel_stall_timeout.is_none(),
            "stall detection is opt-in"
        );
        assert_eq!(c.mem_dual().cores, 2);
        assert_eq!(c.mem_single().cores, 1);
        // The paper's cache geometry flows through from lba-cache.
        assert_eq!(c.mem_dual().l1d.size_bytes, 16 << 10);
        assert_eq!(c.mem_dual().l2.size_bytes, 512 << 10);
    }

    #[test]
    fn live_channel_depth_tracks_the_buffer_budget() {
        // Default: 64 KiB budget over 6464-byte nominal frames = 10 deep.
        let mut c = LogConfig::default();
        assert_eq!(c.live_channel_frames(), 10);
        // A bigger budget deepens the queue proportionally…
        c.buffer_bytes = 256 << 10;
        assert_eq!(c.live_channel_frames(), 40);
        // …bigger frames shallow it…
        c.records_per_frame = 1024;
        assert!(c.live_channel_frames() < 40);
        // …and a sub-frame budget still leaves one slot (the live mode is
        // functional: the producer just blocks more).
        c.buffer_bytes = 64;
        assert_eq!(c.live_channel_frames(), 1);
        // An astronomical budget cannot become an astronomical eager
        // allocation: the depth caps out.
        c.buffer_bytes = 1 << 40;
        assert_eq!(c.live_channel_frames(), MAX_LIVE_CHANNEL_FRAMES);
    }
}
