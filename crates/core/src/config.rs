//! System configuration.

use lba_cache::MemSystemConfig;
use lba_cpu::MachineConfig;
use lba_dbi::DbiConfig;
use lba_lifeguard::{AddrRangeFilter, DispatchConfig};

/// Configuration of the log pipeline (capture → compress → buffer →
/// dispatch).
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Log buffer capacity in bytes (a region carried by the cache
    /// hierarchy in the paper's design).
    pub buffer_bytes: u64,
    /// Whether the VPC compression engine is enabled (ablation C turns it
    /// off to show the bandwidth pressure of a raw log).
    pub compression: bool,
    /// Shared-L2 occupancy cycles charged per 64-byte line of log data
    /// moved (written by the capture engine, read by the dispatch engine).
    pub line_transfer_cycles: u64,
    /// Whether the OS stalls each application syscall until the lifeguard
    /// drains the preceding log entries (§2 containment policy).
    pub syscall_stall: bool,
    /// Whether the application and lifeguard cores run decoupled. When
    /// `false` the application waits for the lifeguard after *every*
    /// record (the lock-step ablation).
    pub decoupled: bool,
    /// Optional capture-side address-range filter (§3 future work).
    pub filter: Option<AddrRangeFilter>,
    /// Validate compressor/decompressor round-trip at end of run
    /// (test/debug aid; costs memory proportional to the trace).
    pub verify_compression: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            buffer_bytes: 64 << 10,
            compression: true,
            line_transfer_cycles: 4,
            syscall_stall: true,
            decoupled: true,
            filter: None,
            verify_compression: false,
        }
    }
}

/// Top-level configuration shared by all three execution models.
///
/// # Examples
///
/// ```
/// use lba::SystemConfig;
///
/// let mut config = SystemConfig::default();
/// config.log.buffer_bytes = 8 << 10; // small buffer: more back-pressure
/// assert!(config.log.compression);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SystemConfig {
    /// CPU/runtime model (quantum, heap size, runtime-event costs).
    pub machine: MachineConfig,
    /// Log pipeline parameters.
    pub log: LogConfig,
    /// Lifeguard-core dispatch cycle model.
    pub dispatch: DispatchConfig,
    /// DBI baseline cycle model.
    pub dbi: DbiConfig,
}

impl SystemConfig {
    /// Memory-system geometry for the unmonitored and DBI runs (one core).
    #[must_use]
    pub fn mem_single(&self) -> MemSystemConfig {
        MemSystemConfig::single_core()
    }

    /// Memory-system geometry for the LBA run (application + lifeguard).
    #[must_use]
    pub fn mem_dual(&self) -> MemSystemConfig {
        MemSystemConfig::dual_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let c = SystemConfig::default();
        assert_eq!(c.log.buffer_bytes, 64 << 10);
        assert!(c.log.compression);
        assert!(c.log.syscall_stall);
        assert!(c.log.decoupled);
        assert_eq!(c.mem_dual().cores, 2);
        assert_eq!(c.mem_single().cores, 1);
        // The paper's cache geometry flows through from lba-cache.
        assert_eq!(c.mem_dual().l1d.size_bytes, 16 << 10);
        assert_eq!(c.mem_dual().l2.size_bytes, 512 << 10);
    }
}
