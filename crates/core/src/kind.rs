//! Lifeguard selection for the experiment layer.

use std::fmt;

use lba_lifeguard::Lifeguard;
use lba_lifeguards::{AddrCheck, LockSet, LockSetConfig, TaintCheck};
use lba_workloads::Benchmark;

/// One of the paper's three lifeguards, as an experiment parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifeguardKind {
    /// Memory-allocation checking (Figure 2(a)).
    AddrCheck,
    /// Dynamic information-flow tracking (Figure 2(b)).
    TaintCheck,
    /// Eraser-style race detection (Figure 2(c)).
    LockSet,
}

impl LifeguardKind {
    /// All three, in figure order.
    pub const ALL: [LifeguardKind; 3] = [
        LifeguardKind::AddrCheck,
        LifeguardKind::TaintCheck,
        LifeguardKind::LockSet,
    ];

    /// Stable lowercase name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LifeguardKind::AddrCheck => "addrcheck",
            LifeguardKind::TaintCheck => "taintcheck",
            LifeguardKind::LockSet => "lockset",
        }
    }

    /// Builds a fresh lifeguard instance configured for the LBA run
    /// (hardware-assisted: LockSet memoises lockset operations).
    #[must_use]
    pub fn make_lba(self) -> Box<dyn Lifeguard> {
        match self {
            LifeguardKind::AddrCheck => Box::new(AddrCheck::new()),
            LifeguardKind::TaintCheck => Box::new(TaintCheck::new()),
            LifeguardKind::LockSet => Box::new(LockSet::new()),
        }
    }

    /// Builds a fresh lifeguard instance configured for the DBI baseline
    /// (software-only: LockSet recomputes lockset operations, as the
    /// paper-era software race detectors did; DESIGN.md §5).
    #[must_use]
    pub fn make_dbi(self) -> Box<dyn Lifeguard> {
        match self {
            LifeguardKind::AddrCheck => Box::new(AddrCheck::new()),
            LifeguardKind::TaintCheck => Box::new(TaintCheck::new()),
            LifeguardKind::LockSet => Box::new(LockSet::with_config(LockSetConfig {
                memoize: false,
                call_overhead: 20,
            })),
        }
    }

    /// The benchmarks this lifeguard is evaluated on in Figure 2:
    /// AddrCheck/TaintCheck run the seven single-threaded programs,
    /// LockSet the two multi-threaded ones.
    #[must_use]
    pub fn benchmarks(self) -> &'static [Benchmark] {
        match self {
            LifeguardKind::AddrCheck | LifeguardKind::TaintCheck => &Benchmark::SINGLE_THREADED,
            LifeguardKind::LockSet => &Benchmark::MULTI_THREADED,
        }
    }

    /// The paper's reported average LBA slowdown for this lifeguard
    /// (§3: 3.9×, 4.8×, 9.7×) — used by the reproduction reports.
    #[must_use]
    pub fn paper_avg_slowdown(self) -> f64 {
        match self {
            LifeguardKind::AddrCheck => 3.9,
            LifeguardKind::TaintCheck => 4.8,
            LifeguardKind::LockSet => 9.7,
        }
    }
}

impl fmt::Display for LifeguardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_benchmark_sets() {
        assert_eq!(LifeguardKind::AddrCheck.benchmarks().len(), 7);
        assert_eq!(LifeguardKind::TaintCheck.benchmarks().len(), 7);
        assert_eq!(LifeguardKind::LockSet.benchmarks().len(), 2);
        assert_eq!(LifeguardKind::LockSet.to_string(), "lockset");
    }

    #[test]
    fn factories_build_matching_lifeguards() {
        for kind in LifeguardKind::ALL {
            assert_eq!(kind.make_lba().name(), kind.name());
            assert_eq!(kind.make_dbi().name(), kind.name());
        }
    }

    #[test]
    fn paper_averages_are_ordered() {
        assert!(
            LifeguardKind::AddrCheck.paper_avg_slowdown()
                < LifeguardKind::TaintCheck.paper_avg_slowdown()
        );
        assert!(
            LifeguardKind::TaintCheck.paper_avg_slowdown()
                < LifeguardKind::LockSet.paper_avg_slowdown()
        );
    }
}
