//! Parallel lifeguards: splitting one lifeguard across multiple cores.
//!
//! §1 of the paper: "the lifeguard functionality can be split across
//! multiple cores, exploiting further parallelism to speed up lifeguards";
//! §3 names "parallelizing lifeguards" as ongoing work. This module
//! implements the address-interleaved variant for lifeguards whose
//! per-address state is independent (AddrCheck, LockSet):
//!
//! * load/store events are **routed** to the shard owning their cache
//!   line (`(addr / 64) % shards`);
//! * all other events (alloc/free, lock/unlock, …) are **broadcast**,
//!   because they update state every shard needs;
//! * each shard is fed through its own framed [`LogChannel`] — the same
//!   transport abstraction the single-lifeguard modes drive — so every
//!   shard's stream is a real compressed frame sequence and the report
//!   carries per-shard wire statistics (the stepping stone to sharded
//!   *live* lifeguards);
//! * lifeguard time is the *maximum* over the shards' clocks, each shard
//!   running on its own core with its own L1.
//!
//! TaintCheck is deliberately not supported: its register state forms a
//! sequential dependence chain through every instruction, so address
//! interleaving is unsound for it. Its parallel mode is the epoch
//! design instead — [`crate::run_taint_parallel`] cuts the stream into
//! *time* slices and stitches symbolic per-epoch summaries in order.

use std::collections::HashSet;

use lba_cache::MemSystem;
use lba_cache::MemSystemConfig;
use lba_cpu::{Machine, RunError, StepOutcome};
use lba_isa::Program;
use lba_lifeguard::{CaptureStats, DegradationStats, DispatchEngine, Finding, Lifeguard};
use lba_record::TraceStats;
use lba_transport::{
    shard_of, ChannelStats, FaultInjector, LoadSample, LogChannel, ModeledFrameChannel,
};

use crate::config::SystemConfig;
use crate::controller::{CaptureController, Transition, Verdict};

/// Per-shard channel byte budget. The parallel study isolates
/// lifeguard-side scaling, so no back-pressure is modelled: shards drain
/// opportunistically as frames seal, keeping transport memory bounded by
/// this budget rather than the whole log.
const SHARD_BUFFER_BYTES: u64 = 1 << 20;

/// Result of a parallel-lifeguard run.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Shard count.
    pub shards: usize,
    /// Application-core cycles (no back-pressure modelled here; the
    /// parallel study isolates lifeguard-side scaling).
    pub app_cycles: u64,
    /// Per-shard lifeguard-core cycles.
    pub shard_cycles: Vec<u64>,
    /// End-to-end cycles: `max(app, slowest shard)`.
    pub total_cycles: u64,
    /// Findings merged over shards, deduplicated.
    pub findings: Vec<Finding>,
    /// Retired-instruction statistics.
    pub trace: TraceStats,
    /// Per-shard transport statistics (records, frames, wire bits).
    pub shard_log: Vec<ChannelStats>,
    /// What the producer-side capture pass did (the idempotency window
    /// runs before routing; the address-range filter stays ignored in
    /// the parallel study).
    pub capture: CaptureStats,
    /// What the adaptive capture controller did on the producer, before
    /// routing (empty when `LogConfig::adaptive` is unset or the policy
    /// tolerates nothing).
    pub degradation: DegradationStats,
}

impl ParallelReport {
    /// The slowest shard's cycles.
    #[must_use]
    pub fn max_shard_cycles(&self) -> u64 {
        self.shard_cycles.iter().copied().max().unwrap_or(0)
    }
}

/// Merges per-shard finding lists in shard order, deduplicating on the
/// identifying fields — broadcast events surface the same finding on every
/// shard (e.g. each one sees the same double free). Shared by the modeled
/// and live sharded modes so their merge semantics cannot drift apart (the
/// integration tests pin their outputs equal).
pub(crate) fn merge_shard_findings(
    shard_findings: impl IntoIterator<Item = Vec<Finding>>,
) -> Vec<Finding> {
    let mut seen = HashSet::new();
    let mut findings = Vec::new();
    for shard in shard_findings {
        for f in shard {
            if seen.insert((f.kind, f.pc, f.addr, f.tid)) {
                findings.push(f);
            }
        }
    }
    findings
}

/// Runs `program` with the lifeguard sharded `shards` ways by address.
///
/// `make_lifeguard` builds one (identical) lifeguard instance per shard.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn run_lba_parallel(
    program: &Program,
    make_lifeguard: impl Fn() -> Box<dyn Lifeguard>,
    shards: usize,
    config: &SystemConfig,
) -> Result<ParallelReport, RunError> {
    assert!(shards > 0, "need at least one shard");
    config.log.validate_framing()?;
    let mut machine = Machine::new(program, config.machine);
    // Core 0: application. Cores 1..=shards: lifeguard shards.
    let mut mem = MemSystem::new(MemSystemConfig::multi_core(shards + 1));
    let engine = DispatchEngine::new(config.dispatch);
    let mut lifeguards: Vec<Box<dyn Lifeguard>> = (0..shards).map(|_| make_lifeguard()).collect();
    let mut channels: Vec<ModeledFrameChannel> = (0..shards)
        .map(|_| {
            if config.log.batch_dispatch {
                // Frame-granular consumption pairs with the zero-copy
                // channel (see `run_lba`); the wire stream is identical.
                ModeledFrameChannel::zero_copy(SHARD_BUFFER_BYTES, config.log.frame_config(), false)
            } else {
                ModeledFrameChannel::new(SHARD_BUFFER_BYTES, config.log.frame_config(), false)
            }
        })
        .collect();
    // Flight recorder: one segmented stream per shard, so replay can
    // rebuild each shard's independent predictor stream.
    if let Some(record) = &config.log.record_to {
        for (idx, channel) in channels.iter_mut().enumerate() {
            let stream = u32::try_from(idx).expect("shard count fits u32");
            channel.tee_into(crate::recorder::open_sink(record, stream)?);
        }
    }
    // Every shard channel runs behind the fault injector (quiet profile =
    // pure delegation); each shard gets its own deterministic stall
    // schedule from the shared profile.
    let mut channels: Vec<FaultInjector<ModeledFrameChannel>> = channels
        .into_iter()
        .map(|c| FaultInjector::new(c, config.log.fault.unwrap_or_default()))
        .collect();
    let mut shard_findings: Vec<Vec<Finding>> = vec![Vec::new(); shards];
    let mut shard_cycles = vec![0u64; shards];
    let mut trace = TraceStats::new();
    let mut app_cycles = 0u64;
    let batch = config.log.batch_dispatch;
    // The capture pass runs *before* routing (duplicates never reach any
    // shard — same-line duplicates would have landed on the same shard
    // anyway, so per-shard soundness matches the unsharded argument). The
    // live sharded mode builds the identical filter, keeping the
    // per-shard streams byte-identical.
    let policy = lifeguards[0].degradation();
    let mut filter = config
        .log
        .adaptive_shard_capture_filter(lifeguards[0].idempotency(), &policy);
    let mut shipping: Vec<lba_record::EventRecord> = Vec::new();
    // The adaptive controller runs pre-routing on the producer, driven by
    // the *most loaded* shard: one overloaded shard is enough to stall
    // the producer in the real design, so it is the signal that matters.
    let mut controller = config
        .log
        .adaptive
        .and_then(|a| CaptureController::new(a, policy));

    /// The load signal for a sharded producer: the occupancy of whichever
    /// shard channel is fullest.
    fn max_load(channels: &[FaultInjector<ModeledFrameChannel>]) -> LoadSample {
        channels
            .iter()
            .map(|c| c.load_sample())
            .max_by_key(LoadSample::occupancy_permille)
            .unwrap_or(LoadSample {
                inflight: 0,
                capacity: 0,
            })
    }

    /// Drains every currently-available frame (or record, in the
    /// per-record baseline) of one shard's channel into its lifeguard.
    fn drain_shard(
        batch: bool,
        channel: &mut dyn LogChannel,
        engine: &DispatchEngine,
        lifeguard: &mut dyn Lifeguard,
        mem: &mut MemSystem,
        core: usize,
        findings: &mut Vec<Finding>,
    ) -> u64 {
        let mut cycles = 0u64;
        if batch {
            while let Some(frame) = channel.pop_frame() {
                cycles += engine.deliver_batch(lifeguard, frame.records, mem, core, findings);
            }
        } else {
            while let Some(popped) = channel.pop_record() {
                cycles += engine.deliver(lifeguard, &popped.record, mem, core, findings);
            }
        }
        cycles
    }

    /// Routes one shipped record into the shard channels and drains any
    /// sealed frames, so transport memory stays bounded by the shard
    /// budget instead of the whole log.
    #[allow(clippy::too_many_arguments)]
    fn feed_shards(
        rec: &lba_record::EventRecord,
        shards: usize,
        batch: bool,
        app_cycles: u64,
        channels: &mut [FaultInjector<ModeledFrameChannel>],
        engine: &DispatchEngine,
        lifeguards: &mut [Box<dyn Lifeguard>],
        mem: &mut MemSystem,
        shard_cycles: &mut [u64],
        shard_findings: &mut [Vec<Finding>],
    ) {
        // Address-interleaved routing, shared with the live mode
        // (`None` means broadcast).
        let route = shard_of(rec, shards);
        for (idx, channel) in channels.iter_mut().enumerate() {
            match route {
                Some(owner) if owner != idx => {
                    // Routed elsewhere: this shard skips the record
                    // (its dispatch sees a no-op entry).
                    shard_cycles[idx] += engine.config().unsubscribed_cycles;
                }
                _ => {
                    channel.push_record(rec, app_cycles);
                }
            }
            shard_cycles[idx] += drain_shard(
                batch,
                channel,
                engine,
                lifeguards[idx].as_mut(),
                mem,
                1 + idx,
                &mut shard_findings[idx],
            );
        }
    }

    loop {
        match machine.step(&mut mem)? {
            StepOutcome::Finished => break,
            StepOutcome::Retired(r) => {
                trace.observe(&r.record);
                app_cycles += r.cycles;
                let mut admit = Verdict::Ship;
                if let Some(ctl) = controller.as_mut() {
                    let findings: u64 = shard_findings.iter().map(|f| f.len() as u64).sum();
                    match ctl.tick(max_load(&channels), findings) {
                        Some(Transition::Engage { widen }) => {
                            for channel in &mut channels {
                                channel.flush(app_cycles);
                                channel.mark_degraded(true);
                            }
                            if widen {
                                filter.widen_window();
                            }
                        }
                        Some(Transition::Disengage { tighten, .. }) => {
                            for channel in &mut channels {
                                channel.flush(app_cycles);
                                channel.mark_degraded(false);
                            }
                            if tighten {
                                filter.tighten_window_into(&mut shipping, |rec| {
                                    feed_shards(
                                        rec,
                                        shards,
                                        batch,
                                        app_cycles,
                                        &mut channels,
                                        &engine,
                                        &mut lifeguards,
                                        &mut mem,
                                        &mut shard_cycles,
                                        &mut shard_findings,
                                    );
                                });
                            }
                        }
                        None => {}
                    }
                    admit = ctl.admit(&r.record);
                }
                if admit == Verdict::Ship {
                    filter.capture_into(&r.record, &mut shipping, |rec| {
                        feed_shards(
                            rec,
                            shards,
                            batch,
                            app_cycles,
                            &mut channels,
                            &engine,
                            &mut lifeguards,
                            &mut mem,
                            &mut shard_cycles,
                            &mut shard_findings,
                        );
                    });
                }
            }
        }
    }

    // A run ending degraded snaps back first, so the closing fold
    // summaries ship at full fidelity and the open interval closes.
    let degradation = match controller {
        Some(ctl) => {
            if ctl.engaged() {
                for channel in &mut channels {
                    channel.flush(app_cycles);
                    channel.mark_degraded(false);
                }
                if policy.widen_window {
                    filter.tighten_window_into(&mut shipping, |rec| {
                        feed_shards(
                            rec,
                            shards,
                            batch,
                            app_cycles,
                            &mut channels,
                            &engine,
                            &mut lifeguards,
                            &mut mem,
                            &mut shard_cycles,
                            &mut shard_findings,
                        );
                    });
                }
            }
            ctl.finish()
        }
        None => DegradationStats::default(),
    };

    // Settle outstanding fold counts before the streams close.
    filter.finish_into(&mut shipping, |rec| {
        feed_shards(
            rec,
            shards,
            batch,
            app_cycles,
            &mut channels,
            &engine,
            &mut lifeguards,
            &mut mem,
            &mut shard_cycles,
            &mut shard_findings,
        );
    });

    // Drain each shard's channel: decode its frame stream in order and
    // deliver to its lifeguard.
    for (idx, (channel, lifeguard)) in channels.iter_mut().zip(lifeguards.iter_mut()).enumerate() {
        channel.flush(app_cycles);
        // Loop until the channel is truly empty: under fault injection a
        // pop refusal models a stalled consumer, and mistaking it for
        // emptiness would truncate this final drain. Stall bursts are
        // bounded, so the loop terminates.
        loop {
            shard_cycles[idx] += drain_shard(
                batch,
                channel,
                &engine,
                lifeguard.as_mut(),
                &mut mem,
                1 + idx,
                &mut shard_findings[idx],
            );
            if channel.drained() {
                break;
            }
        }
        shard_cycles[idx] += engine.finish(
            lifeguard.as_mut(),
            &mut mem,
            1 + idx,
            &mut shard_findings[idx],
        );
    }

    // Close each shard's flight recording (End records + flush).
    for channel in &mut channels {
        crate::recorder::finish_tee(channel.inner_mut().take_tee())?;
    }

    let findings = merge_shard_findings(shard_findings);
    let shard_log: Vec<ChannelStats> = channels.iter().map(|c| c.stats()).collect();
    let total_cycles = app_cycles.max(shard_cycles.iter().copied().max().unwrap_or(0));
    Ok(ParallelReport {
        shards,
        app_cycles,
        shard_cycles,
        total_cycles,
        findings,
        trace,
        shard_log,
        capture: filter.stats(),
        degradation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::LifeguardKind;
    use crate::run::run_unmonitored;
    use lba_lifeguard::FindingKind;
    use lba_workloads::{bugs, Benchmark};

    #[test]
    fn sharded_lockset_scales() {
        let program = Benchmark::Zchaff.build();
        let config = SystemConfig::default();
        let one =
            run_lba_parallel(&program, || LifeguardKind::LockSet.make_lba(), 1, &config).unwrap();
        let four =
            run_lba_parallel(&program, || LifeguardKind::LockSet.make_lba(), 4, &config).unwrap();
        assert!(
            four.max_shard_cycles() * 2 < one.max_shard_cycles(),
            "4 shards ({}) should at least halve one shard ({})",
            four.max_shard_cycles(),
            one.max_shard_cycles()
        );
    }

    #[test]
    fn sharded_addrcheck_still_detects_bugs() {
        let program = bugs::memory_bugs();
        let config = SystemConfig::default();
        let report =
            run_lba_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 4, &config).unwrap();
        use FindingKind::*;
        for kind in [UnallocatedAccess, DoubleFree, InvalidFree, Leak] {
            assert!(
                report.findings.iter().any(|f| f.kind == kind),
                "missing {kind} in sharded run"
            );
        }
        // And duplicates from broadcast events were merged away.
        let doubles = report
            .findings
            .iter()
            .filter(|f| f.kind == DoubleFree)
            .count();
        assert_eq!(doubles, 1);
    }

    #[test]
    fn shards_ship_real_frames() {
        let program = bugs::memory_bugs();
        let config = SystemConfig::default();
        let report =
            run_lba_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 3, &config).unwrap();
        assert_eq!(report.shard_log.len(), 3);
        let records: u64 = report.shard_log.iter().map(|s| s.records).sum();
        // Broadcast events are counted once per shard, so the shards
        // together carry at least the retired event stream.
        assert!(records >= report.trace.instructions());
        for stats in &report.shard_log {
            assert!(stats.frames > 0);
            assert!(stats.wire_bits >= stats.payload_bits);
        }
    }

    #[test]
    fn parallel_beats_app_bound_eventually() {
        // With enough shards the lifeguard stops being the bottleneck.
        let program = Benchmark::Water.build();
        let config = SystemConfig::default();
        let base = run_unmonitored(&program, &config).unwrap();
        let eight =
            run_lba_parallel(&program, || LifeguardKind::LockSet.make_lba(), 8, &config).unwrap();
        let slowdown = eight.total_cycles as f64 / base.total_cycles as f64;
        let single =
            run_lba_parallel(&program, || LifeguardKind::LockSet.make_lba(), 1, &config).unwrap();
        let single_slowdown = single.total_cycles as f64 / base.total_cycles as f64;
        assert!(
            slowdown < single_slowdown / 2.0,
            "8 shards ({slowdown:.1}x) should far outpace 1 ({single_slowdown:.1}x)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let program = bugs::memory_bugs();
        let _ = run_lba_parallel(
            &program,
            || LifeguardKind::AddrCheck.make_lba(),
            0,
            &SystemConfig::default(),
        );
    }
}
