//! Parallel lifeguards: splitting one lifeguard across multiple cores.
//!
//! §1 of the paper: "the lifeguard functionality can be split across
//! multiple cores, exploiting further parallelism to speed up lifeguards";
//! §3 names "parallelizing lifeguards" as ongoing work. This module
//! implements the address-interleaved variant for lifeguards whose
//! per-address state is independent (AddrCheck, LockSet):
//!
//! * load/store events are **routed** to the shard owning their cache
//!   line (the [`ShardedByLine`] topology);
//! * all other events (alloc/free, lock/unlock, …) are **broadcast**,
//!   because they update state every shard needs;
//! * each shard is fed through its own framed [`LogChannel`] — the same
//!   transport abstraction the single-lifeguard modes drive — so every
//!   shard's stream is a real compressed frame sequence and the report
//!   carries per-shard wire statistics (the stepping stone to sharded
//!   *live* lifeguards);
//! * lifeguard time is the *maximum* over the shards' clocks, each shard
//!   running on its own core with its own L1.
//!
//! The producer side is [`Producer::sharded`] driving a `ParallelLink`:
//! the shared capture pass runs *before* routing, so the per-shard streams
//! stay byte-identical with the live sharded mode.
//!
//! TaintCheck is deliberately not supported: its register state forms a
//! sequential dependence chain through every instruction, so address
//! interleaving is unsound for it. Its parallel mode is the epoch
//! design instead — [`crate::run_taint_parallel`] cuts the stream into
//! *time* slices and stitches symbolic per-epoch summaries in order.

use std::collections::HashSet;

use lba_cache::MemSystem;
use lba_cache::MemSystemConfig;
use lba_cpu::{Machine, RunError, StepOutcome};
use lba_isa::Program;
use lba_lifeguard::{DispatchEngine, Finding, Lifeguard};
use lba_record::{EventRecord, TraceStats};
use lba_transport::{ChannelStats, FaultInjector, LoadSample, LogChannel, ModeledFrameChannel};

use crate::config::SystemConfig;
use crate::pipeline::{ConsumerTopology, Producer, ProducerLink, Route, ShardedByLine};
use crate::report::{LogStats, PipelineReport};

/// Per-shard channel byte budget. The parallel study isolates
/// lifeguard-side scaling, so no back-pressure is modelled: shards drain
/// opportunistically as frames seal, keeping transport memory bounded by
/// this budget rather than the whole log.
const SHARD_BUFFER_BYTES: u64 = 1 << 20;

/// Result of a parallel-lifeguard run.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Shard count.
    pub shards: usize,
    /// Application-core cycles (no back-pressure modelled here; the
    /// parallel study isolates lifeguard-side scaling).
    pub app_cycles: u64,
    /// Per-shard lifeguard-core cycles.
    pub shard_cycles: Vec<u64>,
    /// End-to-end cycles: `max(app, slowest shard)`.
    pub total_cycles: u64,
    /// Retired-instruction statistics.
    pub trace: TraceStats,
    /// Per-shard transport statistics (records, frames, wire bits).
    pub shard_log: Vec<ChannelStats>,
    /// The shared pipeline core: findings merged over shards
    /// (deduplicated), log statistics summed over the shard channels, and
    /// the producer-side capture/degradation ledgers.
    pub pipeline: PipelineReport,
}

crate::report::deref_pipeline!(ParallelReport);

impl ParallelReport {
    /// The slowest shard's cycles.
    #[must_use]
    pub fn max_shard_cycles(&self) -> u64 {
        self.shard_cycles.iter().copied().max().unwrap_or(0)
    }
}

/// Merges per-shard finding lists in shard order, deduplicating on the
/// identifying fields — broadcast events surface the same finding on every
/// shard (e.g. each one sees the same double free). Shared by the modeled
/// and live sharded modes so their merge semantics cannot drift apart (the
/// integration tests pin their outputs equal).
pub(crate) fn merge_shard_findings(
    shard_findings: impl IntoIterator<Item = Vec<Finding>>,
) -> Vec<Finding> {
    let mut seen = HashSet::new();
    let mut findings = Vec::new();
    for shard in shard_findings {
        for f in shard {
            if seen.insert((f.kind, f.pc, f.addr, f.tid)) {
                findings.push(f);
            }
        }
    }
    findings
}

/// Delivers every currently-available frame (or record, in the per-record
/// baseline) of one shard's channel into its lifeguard.
fn drain_shard(
    batch: bool,
    channel: &mut dyn LogChannel,
    engine: &DispatchEngine,
    lifeguard: &mut dyn Lifeguard,
    mem: &mut MemSystem,
    core: usize,
    findings: &mut Vec<Finding>,
) -> u64 {
    let mut cycles = 0u64;
    if batch {
        while let Some(frame) = channel.pop_frame() {
            cycles += engine.deliver_batch(lifeguard, frame.records, mem, core, findings);
        }
    } else {
        while let Some(popped) = channel.pop_record() {
            cycles += engine.deliver(lifeguard, &popped.record, mem, core, findings);
        }
    }
    cycles
}

/// The modeled sharded mode's [`ProducerLink`]: one framed channel,
/// lifeguard instance and clock per shard, with the [`ShardedByLine`]
/// topology deciding routed-vs-broadcast per record. It owns the whole
/// consumer side so a single record's ship can charge non-owner shards
/// their no-op dispatch cost and opportunistically drain sealed frames.
struct ParallelLink {
    topology: ShardedByLine,
    batch: bool,
    app_cycles: u64,
    channels: Vec<FaultInjector<ModeledFrameChannel>>,
    engine: DispatchEngine,
    lifeguards: Vec<Box<dyn Lifeguard>>,
    mem: MemSystem,
    shard_cycles: Vec<u64>,
    shard_findings: Vec<Vec<Finding>>,
}

impl ProducerLink for ParallelLink {
    fn ship(&mut self, rec: &EventRecord) {
        // Address-interleaved routing, shared with the live mode
        // (`Broadcast` reaches every shard).
        let route = self.topology.route(rec);
        for idx in 0..self.channels.len() {
            match route {
                Route::Shard(owner) if owner != idx => {
                    // Routed elsewhere: this shard skips the record
                    // (its dispatch sees a no-op entry).
                    self.shard_cycles[idx] += self.engine.config().unsubscribed_cycles;
                }
                _ => {
                    self.channels[idx].push_record(rec, self.app_cycles);
                }
            }
            self.shard_cycles[idx] += drain_shard(
                self.batch,
                &mut self.channels[idx],
                &self.engine,
                self.lifeguards[idx].as_mut(),
                &mut self.mem,
                1 + idx,
                &mut self.shard_findings[idx],
            );
        }
    }

    fn on_engage(&mut self) {
        for channel in &mut self.channels {
            channel.flush(self.app_cycles);
            channel.mark_degraded(true);
        }
    }

    fn on_disengage(&mut self) {
        for channel in &mut self.channels {
            channel.flush(self.app_cycles);
            channel.mark_degraded(false);
        }
    }

    fn load_sample(&self) -> LoadSample {
        // The load signal for a sharded producer: the occupancy of
        // whichever shard channel is fullest — one overloaded shard is
        // enough to stall the producer in the real design.
        self.channels
            .iter()
            .map(|c| c.load_sample())
            .max_by_key(LoadSample::occupancy_permille)
            .unwrap_or_default()
    }

    fn finding_count(&self) -> u64 {
        self.shard_findings.iter().map(|f| f.len() as u64).sum()
    }
}

/// Runs `program` with the lifeguard sharded `shards` ways by address.
///
/// `make_lifeguard` builds one (identical) lifeguard instance per shard.
///
/// New code should prefer the unified [`Run`](crate::Run) builder
/// (`RunMode::LbaParallel`); this free function remains the mode's
/// direct entry point.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine.
///
/// # Panics
///
/// Panics if `shards` is zero.
pub fn run_lba_parallel(
    program: &Program,
    make_lifeguard: impl Fn() -> Box<dyn Lifeguard>,
    shards: usize,
    config: &SystemConfig,
) -> Result<ParallelReport, RunError> {
    assert!(shards > 0, "need at least one shard");
    config.log.validate_framing()?;
    let mut machine = Machine::new(program, config.machine);
    let lifeguards: Vec<Box<dyn Lifeguard>> = (0..shards).map(|_| make_lifeguard()).collect();
    let mut channels: Vec<ModeledFrameChannel> = (0..shards)
        .map(|_| {
            if config.log.batch_dispatch {
                // Frame-granular consumption pairs with the zero-copy
                // channel (see `run_lba`); the wire stream is identical.
                ModeledFrameChannel::zero_copy(SHARD_BUFFER_BYTES, config.log.frame_config(), false)
            } else {
                ModeledFrameChannel::new(SHARD_BUFFER_BYTES, config.log.frame_config(), false)
            }
        })
        .collect();
    // Flight recorder: one segmented stream per shard, so replay can
    // rebuild each shard's independent predictor stream.
    if let Some(record) = &config.log.record_to {
        for (idx, channel) in channels.iter_mut().enumerate() {
            let stream = u32::try_from(idx).expect("shard count fits u32");
            channel.tee_into(crate::recorder::open_sink(record, stream)?);
        }
    }
    // Every shard channel runs behind the fault injector (quiet profile =
    // pure delegation); each shard gets its own deterministic stall
    // schedule from the shared profile.
    let channels: Vec<FaultInjector<ModeledFrameChannel>> = channels
        .into_iter()
        .map(|c| FaultInjector::new(c, config.log.fault.unwrap_or_default()))
        .collect();
    // The shared capture pass (idempotency window, no range filter) plus
    // the adaptive controller, pre-routing on the producer.
    let mut producer = Producer::sharded(lifeguards[0].as_ref(), config);
    let mut link = ParallelLink {
        topology: ShardedByLine::new(shards),
        batch: config.log.batch_dispatch,
        app_cycles: 0,
        channels,
        engine: DispatchEngine::new(config.dispatch),
        lifeguards,
        // Core 0: application. Cores 1..=shards: lifeguard shards.
        mem: MemSystem::new(MemSystemConfig::multi_core(shards + 1)),
        shard_cycles: vec![0u64; shards],
        shard_findings: vec![Vec::new(); shards],
    };

    loop {
        match machine.step(&mut link.mem)? {
            StepOutcome::Finished => break,
            StepOutcome::Retired(r) => {
                link.app_cycles += r.cycles;
                producer.observe(&r.record, &mut link);
            }
        }
    }

    // Snap back out of degradation, settle fold counts, ship the tail.
    let finish = producer.finish(&mut link);
    let app_cycles = link.app_cycles;

    // Drain each shard's channel: decode its frame stream in order and
    // deliver to its lifeguard.
    for idx in 0..shards {
        link.channels[idx].flush(app_cycles);
        // Loop until the channel is truly empty: under fault injection a
        // pop refusal models a stalled consumer, and mistaking it for
        // emptiness would truncate this final drain. Stall bursts are
        // bounded, so the loop terminates.
        loop {
            link.shard_cycles[idx] += drain_shard(
                link.batch,
                &mut link.channels[idx],
                &link.engine,
                link.lifeguards[idx].as_mut(),
                &mut link.mem,
                1 + idx,
                &mut link.shard_findings[idx],
            );
            if link.channels[idx].drained() {
                break;
            }
        }
        link.shard_cycles[idx] += link.engine.finish(
            link.lifeguards[idx].as_mut(),
            &mut link.mem,
            1 + idx,
            &mut link.shard_findings[idx],
        );
    }

    // Close each shard's flight recording (End records + flush).
    for channel in &mut link.channels {
        crate::recorder::finish_tee(channel.inner_mut().take_tee())?;
    }

    let findings = merge_shard_findings(link.shard_findings);
    let shard_log: Vec<ChannelStats> = link.channels.iter().map(|c| c.stats()).collect();
    let total_cycles = app_cycles.max(link.shard_cycles.iter().copied().max().unwrap_or(0));
    Ok(ParallelReport {
        shards,
        app_cycles,
        shard_cycles: link.shard_cycles,
        total_cycles,
        pipeline: PipelineReport {
            findings,
            log: LogStats::from_channels(&shard_log, finish.capture, finish.trace.instructions()),
            capture: finish.capture,
            degradation: finish.degradation,
        },
        trace: finish.trace,
        shard_log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::LifeguardKind;
    use crate::run::run_unmonitored;
    use lba_lifeguard::FindingKind;
    use lba_workloads::{bugs, Benchmark};

    #[test]
    fn sharded_lockset_scales() {
        let program = Benchmark::Zchaff.build();
        let config = SystemConfig::default();
        let one =
            run_lba_parallel(&program, || LifeguardKind::LockSet.make_lba(), 1, &config).unwrap();
        let four =
            run_lba_parallel(&program, || LifeguardKind::LockSet.make_lba(), 4, &config).unwrap();
        assert!(
            four.max_shard_cycles() * 2 < one.max_shard_cycles(),
            "4 shards ({}) should at least halve one shard ({})",
            four.max_shard_cycles(),
            one.max_shard_cycles()
        );
    }

    #[test]
    fn sharded_addrcheck_still_detects_bugs() {
        let program = bugs::memory_bugs();
        let config = SystemConfig::default();
        let report =
            run_lba_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 4, &config).unwrap();
        use FindingKind::*;
        for kind in [UnallocatedAccess, DoubleFree, InvalidFree, Leak] {
            assert!(
                report.findings.iter().any(|f| f.kind == kind),
                "missing {kind} in sharded run"
            );
        }
        // And duplicates from broadcast events were merged away.
        let doubles = report
            .findings
            .iter()
            .filter(|f| f.kind == DoubleFree)
            .count();
        assert_eq!(doubles, 1);
    }

    #[test]
    fn shards_ship_real_frames() {
        let program = bugs::memory_bugs();
        let config = SystemConfig::default();
        let report =
            run_lba_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 3, &config).unwrap();
        assert_eq!(report.shard_log.len(), 3);
        let records: u64 = report.shard_log.iter().map(|s| s.records).sum();
        // Broadcast events are counted once per shard, so the shards
        // together carry at least the retired event stream.
        assert!(records >= report.trace.instructions());
        for stats in &report.shard_log {
            assert!(stats.frames > 0);
            assert!(stats.wire_bits >= stats.payload_bits);
        }
        // The aggregate pipeline log is the sum over the shard channels.
        assert_eq!(report.log.records, records);
    }

    #[test]
    fn parallel_beats_app_bound_eventually() {
        // With enough shards the lifeguard stops being the bottleneck.
        let program = Benchmark::Water.build();
        let config = SystemConfig::default();
        let base = run_unmonitored(&program, &config).unwrap();
        let eight =
            run_lba_parallel(&program, || LifeguardKind::LockSet.make_lba(), 8, &config).unwrap();
        let slowdown = eight.total_cycles as f64 / base.total_cycles as f64;
        let single =
            run_lba_parallel(&program, || LifeguardKind::LockSet.make_lba(), 1, &config).unwrap();
        let single_slowdown = single.total_cycles as f64 / base.total_cycles as f64;
        assert!(
            slowdown < single_slowdown / 2.0,
            "8 shards ({slowdown:.1}x) should far outpace 1 ({single_slowdown:.1}x)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let program = bugs::memory_bugs();
        let _ = run_lba_parallel(
            &program,
            || LifeguardKind::AddrCheck.make_lba(),
            0,
            &SystemConfig::default(),
        );
    }
}
