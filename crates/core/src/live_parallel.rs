//! Sharded live lifeguards: one producer thread, N consumer threads, N
//! independent compressed frame streams.
//!
//! [`run_lba_parallel`](crate::parallel::run_lba_parallel) *models*
//! splitting a lifeguard across cores; this module actually does it on OS
//! threads. The producer runs the machine and routes each load/store
//! record to the shard owning its cache line (broadcasting everything
//! else — the identical [`ShardedByLine`] topology the modeled mode uses),
//! pushing into one [`FrameSender`](lba_transport::live::FrameSender) per
//! shard. Because every shard owns a full compressor/decompressor pair,
//! the value predictors never thread state across shards, and the N
//! consumer threads decode their frame streams *concurrently* — closing
//! the ROADMAP's "parallel value decompression" item as a by-product of
//! sharding: the per-stream codec stays sequential, but there are now N
//! streams.
//!
//! Fidelity contract with the modeled mode: the router, the per-shard
//! record order, and the frame boundaries (seal every
//! `records_per_frame`, flush only at end of program; no range filter,
//! mirroring the modeled parallel study) are identical — both modes drive
//! [`Producer::sharded`] — so each shard's wire stream matches
//! `run_lba_parallel`'s shard byte for byte, and the merged findings are
//! equal. Integration tests pin both.
//!
//! Like the modeled mode, TaintCheck is unsupported: its register state is
//! a sequential dependence chain through every instruction, so address
//! interleaving is unsound for it — use the epoch-parallel mode
//! ([`crate::run_live_taint_parallel`]) for taint on real threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use lba_cache::MemSystem;
use lba_cpu::{Machine, RunError};
use lba_isa::Program;
use lba_lifeguard::{DispatchEngine, Finding, Lifeguard};
use lba_record::EventRecord;
use lba_transport::live::shard_frame_channels;
use lba_transport::{ChannelStats, LoadSample};

use crate::config::SystemConfig;
use crate::pipeline::{ConsumerTopology, Producer, ProducerLink, Route, ShardedByLine};
use crate::report::{LiveParallelReport, LogStats, PipelineReport};

/// The lifeguard-core MemSystem index used by every consumer thread (each
/// thread owns a private dual-core memory system; live mode reports no
/// modeled clocks, so the geometry only feeds shadow-cost accounting).
const LG_CORE: usize = 1;

/// The live sharded mode's [`ProducerLink`]: one framed SPSC sender per
/// shard, the [`ShardedByLine`] topology deciding routed-vs-broadcast,
/// and the consumers' published finding count as the snapback signal.
struct LiveShardLink<'a> {
    topology: ShardedByLine,
    senders: Vec<lba_transport::live::FrameSender>,
    finding_count: &'a AtomicU64,
}

impl ProducerLink for LiveShardLink<'_> {
    fn ship(&mut self, rec: &EventRecord) {
        match self.topology.route(rec) {
            Route::Shard(owner) => self.senders[owner].push(rec),
            _ => {
                for tx in self.senders.iter_mut() {
                    tx.push(rec);
                }
            }
        }
    }

    fn on_engage(&mut self) {
        for tx in self.senders.iter_mut() {
            tx.flush();
            tx.set_degraded(true);
        }
    }

    fn on_disengage(&mut self) {
        for tx in self.senders.iter_mut() {
            tx.flush();
            tx.set_degraded(false);
        }
    }

    fn load_sample(&self) -> LoadSample {
        // The sharded producer's load signal: the fullest shard's queue —
        // one overloaded shard is what blocks the producer.
        self.senders
            .iter()
            .map(|tx| tx.load_sample())
            .max_by_key(LoadSample::occupancy_permille)
            .unwrap_or_default()
    }

    fn finding_count(&self) -> u64 {
        self.finding_count.load(Ordering::Relaxed)
    }
}

/// Runs `program` on one thread with the lifeguard sharded `shards` ways
/// by address, each shard on its own OS thread with its own framed
/// compressed channel, dispatch engine, and lifeguard instance.
///
/// `make_lifeguard` builds one (identical) lifeguard instance per shard;
/// it is called on each consumer thread, so the instances never migrate.
/// The channel depth per shard comes from
/// [`LogConfig::live_channel_frames`](crate::LogConfig::live_channel_frames),
/// the same budget-derived depth `run_live` uses.
///
/// Unlike [`run_live`](crate::run_live), this mode mirrors the modeled
/// parallel study exactly, so two `LogConfig` fields are deliberately
/// **ignored**: `filter` (the address-range filter has no sharded
/// soundness story) and `syscall_stall` (frames seal only when full or at
/// end of program; there is no containment flush). The
/// `idempotency_window` **does** apply: the capture pass runs on the
/// producer before routing — a suppressed duplicate would have landed on
/// the same shard as its first occurrence, so the per-lifeguard soundness
/// contract carries over unchanged — and `run_lba_parallel` runs the
/// identical pass, which keeps each shard's wire stream byte-identical
/// between the two modes.
///
/// New code should prefer the unified [`Run`](crate::Run) builder
/// (`RunMode::LiveParallel`); this free function remains the mode's
/// direct entry point.
///
/// # Errors
///
/// Propagates any [`RunError`] from the machine thread.
///
/// # Panics
///
/// Panics if `shards` is zero, or if a consumer thread panics (a codec or
/// lifeguard bug, not an I/O condition).
pub fn run_live_parallel(
    program: &Program,
    make_lifeguard: impl Fn() -> Box<dyn Lifeguard> + Sync,
    shards: usize,
    config: &SystemConfig,
) -> Result<LiveParallelReport, RunError> {
    assert!(shards > 0, "need at least one shard");
    config.log.validate_framing()?;
    let (mut senders, mut receivers) = shard_frame_channels(
        shards,
        config.log.live_channel_frames(),
        config.log.frame_config(),
    );
    // Flight recorder: one segmented stream per shard, mirrored on the
    // producer as each shard's frames ship.
    if let Some(record) = &config.log.record_to {
        for (idx, tx) in senders.iter_mut().enumerate() {
            let stream = u32::try_from(idx).expect("shard count fits u32");
            tx.tee_into(crate::recorder::open_sink(record, stream)?);
        }
    }
    // Stall detection and fault injection, per shard (see `run_live`).
    for tx in senders.iter_mut() {
        tx.set_stall_timeout(config.log.channel_stall_timeout);
    }
    if let Some(fault) = &config.log.fault {
        for rx in receivers.iter_mut() {
            rx.set_drag(fault.drain_drag);
        }
    }
    let make_lifeguard = &make_lifeguard;
    // The finding-snapback signal: consumers accumulate their finding
    // counts here; any growth the producer's controller observes snaps
    // capture back to full fidelity.
    let finding_count = AtomicU64::new(0);
    let finding_count = &finding_count;

    thread::scope(|scope| {
        let consumers: Vec<_> = receivers
            .into_iter()
            .map(|mut rx| {
                scope.spawn(move || -> (Vec<Finding>, ChannelStats) {
                    let mut lifeguard = make_lifeguard();
                    let engine = DispatchEngine::new(config.dispatch);
                    let mut mem = MemSystem::new(config.mem_dual());
                    let mut findings = Vec::new();
                    let mut published = 0usize;
                    let publish = |findings: &Vec<Finding>, published: &mut usize| {
                        if findings.len() > *published {
                            finding_count
                                .fetch_add((findings.len() - *published) as u64, Ordering::Relaxed);
                            *published = findings.len();
                        }
                    };
                    if config.log.batch_dispatch {
                        while let Some(batch) = rx.recv_batch() {
                            engine.deliver_batch(
                                lifeguard.as_mut(),
                                batch,
                                &mut mem,
                                LG_CORE,
                                &mut findings,
                            );
                            publish(&findings, &mut published);
                        }
                    } else {
                        while let Some(record) = rx.recv_ref() {
                            engine.deliver(
                                lifeguard.as_mut(),
                                record,
                                &mut mem,
                                LG_CORE,
                                &mut findings,
                            );
                            publish(&findings, &mut published);
                        }
                    }
                    engine.finish(lifeguard.as_mut(), &mut mem, LG_CORE, &mut findings);
                    (findings, rx.stats())
                })
            })
            .collect();

        // Produce on this thread: run the machine, apply the shared
        // capture pass (identical to `run_lba_parallel`'s) and fan the
        // log out. The link — and with it every sender — drops when this
        // closure returns, closing the shard streams so the consumers can
        // finish whether or not the run errored.
        let produced = (|| -> Result<crate::pipeline::ProducerFinish, RunError> {
            let mut machine = Machine::new(program, config.machine);
            let mut mem = MemSystem::new(config.mem_single());
            let seed = make_lifeguard();
            let mut producer = Producer::sharded(seed.as_ref(), config);
            drop(seed);
            let mut link = LiveShardLink {
                topology: ShardedByLine::new(shards),
                senders,
                finding_count,
            };
            machine.run(&mut mem, |r| producer.observe(&r.record, &mut link))?;
            if link.senders.iter().any(|tx| tx.stalled()) {
                return Err(RunError::ChannelStalled);
            }
            // Snap back out of degradation, settle fold counts, ship the
            // tail.
            let finish = producer.finish(&mut link);
            // Seal each shard's final partial frame before taking the
            // tees back, so the recordings carry the complete per-shard
            // wire streams (the drop-flush below then ships nothing).
            for tx in link.senders.iter_mut() {
                tx.flush();
                crate::recorder::finish_tee(tx.take_tee())?;
            }
            if link.senders.iter().any(|tx| tx.stalled()) {
                return Err(RunError::ChannelStalled);
            }
            Ok(finish)
        })();

        let mut shard_findings = Vec::with_capacity(shards);
        let mut shard_log = Vec::with_capacity(shards);
        for handle in consumers {
            let (findings, stats) = handle.join().expect("consumer thread must not panic");
            shard_findings.push(findings);
            shard_log.push(stats);
        }
        let findings = crate::parallel::merge_shard_findings(shard_findings);
        let finish = produced?;
        Ok(LiveParallelReport {
            program: program.name().to_string(),
            shards,
            pipeline: PipelineReport {
                findings,
                log: LogStats::from_channels(
                    &shard_log,
                    finish.capture,
                    finish.trace.instructions(),
                ),
                capture: finish.capture,
                degradation: finish.degradation,
            },
            trace: finish.trace,
            shard_log,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::LifeguardKind;
    use lba_lifeguard::FindingKind;
    use lba_workloads::{bugs, Benchmark};

    #[test]
    fn sharded_live_addrcheck_detects_bugs_once() {
        let program = bugs::memory_bugs();
        let config = SystemConfig::default();
        let report =
            run_live_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 4, &config)
                .unwrap();
        use FindingKind::*;
        for kind in [UnallocatedAccess, DoubleFree, InvalidFree, Leak] {
            assert!(
                report.findings.iter().any(|f| f.kind == kind),
                "missing {kind} in sharded live run"
            );
        }
        // Broadcast duplicates were merged away.
        let doubles = report
            .findings
            .iter()
            .filter(|f| f.kind == DoubleFree)
            .count();
        assert_eq!(doubles, 1);
    }

    #[test]
    fn every_shard_ships_real_compressed_frames() {
        let program = Benchmark::Gzip.build();
        let config = SystemConfig::default();
        let report =
            run_live_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 3, &config)
                .unwrap();
        assert_eq!(report.shard_log.len(), 3);
        // Broadcast records count once per shard, so together the shards
        // carry at least the retired event stream.
        assert!(report.total_records() >= report.trace.instructions());
        for stats in &report.shard_log {
            assert!(stats.frames > 0, "every shard must ship frames");
            assert!(stats.wire_bits >= stats.payload_bits);
            assert!(stats.high_water_bits > 0);
        }
    }

    #[test]
    fn one_shard_degenerates_to_the_whole_stream() {
        let program = bugs::data_race();
        let config = SystemConfig::default();
        let report =
            run_live_parallel(&program, || LifeguardKind::LockSet.make_lba(), 1, &config).unwrap();
        assert_eq!(report.shards, 1);
        // A single shard owns every record: no routing, no broadcast dups.
        assert_eq!(report.shard_log[0].records, report.trace.instructions());
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DataRace));
    }

    #[test]
    fn tiny_buffer_budget_still_completes() {
        // A sub-frame budget leaves each shard a one-deep queue: the
        // producer blocks more, but nothing deadlocks or drops.
        let program = bugs::memory_bugs();
        let mut config = SystemConfig::default();
        config.log.buffer_bytes = 64;
        assert_eq!(config.log.live_channel_frames(), 1);
        let report =
            run_live_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 2, &config)
                .unwrap();
        assert!(report
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::DoubleFree));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let program = bugs::memory_bugs();
        let _ = run_live_parallel(
            &program,
            || LifeguardKind::AddrCheck.make_lba(),
            0,
            &SystemConfig::default(),
        );
    }

    #[test]
    fn zero_records_per_frame_is_a_config_error() {
        let program = bugs::memory_bugs();
        let mut config = SystemConfig::default();
        config.log.records_per_frame = 0;
        let err = run_live_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 2, &config)
            .unwrap_err();
        assert_eq!(err, RunError::ZeroRecordsPerFrame);
    }
}
