//! The staged capture pipeline every run mode is a composition of.
//!
//! The nine `run_*` entry points used to each hand-roll the producer side
//! of the pipeline — machine stepping, capture filtering, adaptive
//! controller transitions, syscall containment — and its own consumer
//! shape. The capture logic now lives here exactly once:
//!
//! * [`Producer`] — the per-record stage chain (trace accounting →
//!   [`CaptureFilter`] → [`CaptureController`] verdicts and transitions →
//!   ship), with the degradation ledger and syscall-flush containment
//!   written once and driven through a mode-specific [`ProducerLink`];
//! * [`ProducerLink`] — what a run mode must plug in: where shipped
//!   records go, what a flush-and-mark transition does to its transport,
//!   and which load/finding signals feed the controller;
//! * [`ConsumerTopology`] — how shipped records map onto consumers:
//!   [`SingleConsumer`], [`ShardedByLine`], [`EpochRouted`], and
//!   [`ReplaySource`], each instantiated over both the modeled and the
//!   live execution model by the corresponding runners;
//! * [`MONITORS`] / [`RUN_MODES`] — the single registry the experiment
//!   layer, the benchmarks and the cross-mode equivalence suite derive
//!   their mode and lifeguard enumerations from.
//!
//! The runners (`cosim.rs`, `live.rs`, `parallel.rs`, `live_parallel.rs`,
//! `epoch_parallel.rs`, `replay.rs`) are thin compositions over these
//! pieces; the cross-mode equivalence proptests pin that the composition
//! is bit-for-bit what the hand-rolled loops produced.

use lba_lifeguard::{CaptureFilter, CaptureStats, DegradationRequest, DegradationStats, Lifeguard};
use lba_record::{EventKind, EventRecord, TraceStats};
use lba_transport::{shard_of, EpochRouter, LoadSample};

use crate::config::SystemConfig;
use crate::controller::{CaptureController, Transition, Verdict};

/// What one run mode plugs under the [`Producer`]: the transport-facing
/// half of the capture pipeline. The producer decides *what* ships and
/// *when* fidelity transitions happen; the link owns the plumbing —
/// pushing records, flushing frames, marking the wire degraded, absorbing
/// modeled timing — because only the mode knows its transport.
///
/// The default methods are the signals a minimal link may not have: a
/// transport with no occupancy signal reports an empty [`LoadSample`]
/// (the controller then never engages on load), a producer that cannot
/// see findings reports zero, and modes without syscall containment or
/// lock-step synchronisation leave those hooks as no-ops.
pub trait ProducerLink {
    /// Ships one captured record into the transport (absorbing any
    /// modeled back-pressure).
    fn ship(&mut self, rec: &EventRecord);

    /// Applies a degradation engagement to the transport: flush the open
    /// frame (so the degraded mark starts on a frame boundary) and set
    /// the wire's degraded mark. Only called when the mode runs a
    /// [`CaptureController`]; the default is a no-op for modes that never
    /// construct one.
    fn on_engage(&mut self) {}

    /// Applies a degradation disengagement: flush the open frame and
    /// clear the wire's degraded mark. The producer ships the tighten
    /// summaries (if any) immediately after. Default: no-op.
    fn on_disengage(&mut self) {}

    /// The transport occupancy the controller steers by. Defaults to an
    /// empty sample (occupancy 0), so load-driven engagement never fires.
    fn load_sample(&self) -> LoadSample {
        LoadSample::default()
    }

    /// The current finding count — growth snaps degraded capture back to
    /// full fidelity. Defaults to zero (no snapback signal).
    fn finding_count(&self) -> u64 {
        0
    }

    /// Enforces the syscall containment policy (§2): flush the open
    /// frame and — where the mode models it — stall the application
    /// until the lifeguard drains the preceding log. Default: no-op
    /// (the sharded and epoch modes do not contain syscalls).
    fn contain_syscall(&mut self) {}

    /// Synchronises the cores after one record (the lock-step ablation).
    /// Only the co-simulation models this; default: no-op.
    fn lockstep(&mut self) {}

    /// Takes the pending analysis-side degradation request, if the
    /// mode's consumer polled one from its lifeguard
    /// ([`lba_lifeguard::Lifeguard::degradation_request`]). Take
    /// semantics: returning `Some` consumes the request. Default: `None`
    /// (modes that do not surface the dial).
    fn take_degradation_request(&mut self) -> Option<DegradationRequest> {
        None
    }
}

/// What the producer stage chain hands back when the stream ends.
#[derive(Debug)]
pub struct ProducerFinish {
    /// Trace statistics over every retired record.
    pub trace: TraceStats,
    /// The capture filter's ledger (captured/filtered/deduped/folded).
    pub capture: CaptureStats,
    /// The degradation ledger ([`DegradationStats::default`] when the
    /// mode ran without a controller).
    pub degradation: DegradationStats,
}

/// The producer half of the capture pipeline, written once for every run
/// mode: trace accounting, the capture-filter pass, the adaptive
/// controller's transitions and verdicts, and syscall containment, all
/// driven through a mode-specific [`ProducerLink`].
///
/// Drive it with one [`observe`](Self::observe) per retired record and
/// one [`finish`](Self::finish) after the last; the link receives every
/// shipped record and every transport-facing transition in exactly the
/// order the pre-refactor hand-rolled loops produced them.
#[derive(Debug)]
pub struct Producer {
    trace: TraceStats,
    filter: CaptureFilter,
    shipping: Vec<EventRecord>,
    controller: Option<CaptureController>,
    policy_widen: bool,
    syscall_stall: bool,
    decoupled: bool,
}

impl Producer {
    fn build(
        filter: CaptureFilter,
        controller: Option<CaptureController>,
        policy_widen: bool,
        syscall_stall: bool,
        decoupled: bool,
    ) -> Self {
        Producer {
            trace: TraceStats::new(),
            filter,
            shipping: Vec::new(),
            controller,
            policy_widen,
            syscall_stall,
            decoupled,
        }
    }

    /// The single-consumer co-simulation producer (`run_lba`): the full
    /// capture pass
    /// ([`LogConfig::adaptive_capture_filter`](crate::LogConfig::adaptive_capture_filter)),
    /// the adaptive controller when configured, syscall containment per
    /// `config.log.syscall_stall`, and the lock-step ablation per
    /// `config.log.decoupled`.
    #[must_use]
    pub fn single(lifeguard: &dyn Lifeguard, config: &SystemConfig) -> Self {
        let policy = lifeguard.degradation();
        let filter = config
            .log
            .adaptive_capture_filter(lifeguard.idempotency(), &policy);
        let controller = config
            .log
            .adaptive
            .and_then(|a| CaptureController::new(a, policy));
        Producer::build(
            filter,
            controller,
            policy.widen_window,
            config.log.syscall_stall,
            config.log.decoupled,
        )
    }

    /// The live single-consumer producer (`run_live`): same capture pass
    /// as [`single`](Self::single), but the cores are real OS threads —
    /// lock-step is meaningless (the link's flush is the only
    /// synchronisation), so the producer is always decoupled and syscall
    /// containment reduces to the link's flush.
    #[must_use]
    pub fn live(lifeguard: &dyn Lifeguard, config: &SystemConfig) -> Self {
        let policy = lifeguard.degradation();
        let filter = config
            .log
            .adaptive_capture_filter(lifeguard.idempotency(), &policy);
        let controller = config
            .log
            .adaptive
            .and_then(|a| CaptureController::new(a, policy));
        Producer::build(
            filter,
            controller,
            policy.widen_window,
            config.log.syscall_stall,
            true,
        )
    }

    /// The sharded-mode producer (`run_lba_parallel`,
    /// `run_live_parallel`): the shard capture filter (idempotency window
    /// but no address-range filter, so every shard ships an identical
    /// stream — see
    /// [`LogConfig::shard_capture_filter`](crate::LogConfig::shard_capture_filter)),
    /// the adaptive controller when configured, and no syscall
    /// containment (the sharded study measures steady-state capture).
    #[must_use]
    pub fn sharded(lifeguard: &dyn Lifeguard, config: &SystemConfig) -> Self {
        let policy = lifeguard.degradation();
        let filter = config
            .log
            .adaptive_shard_capture_filter(lifeguard.idempotency(), &policy);
        let controller = config
            .log
            .adaptive
            .and_then(|a| CaptureController::new(a, policy));
        Producer::build(filter, controller, policy.widen_window, false, true)
    }

    /// The epoch-mode producer (`run_epoch_parallel` and friends): a pure
    /// passthrough — no range filter, no idempotency window, no
    /// controller — because epoch summaries are computed over the *full*
    /// stream and stitched in order; dropping records would change the
    /// summaries. Every retired record ships (captured == shipped).
    #[must_use]
    pub fn passthrough() -> Self {
        Producer::build(
            CaptureFilter::new(None, 0, lba_lifeguard::IdempotencyClass::None),
            None,
            false,
            false,
            true,
        )
    }

    /// Observes one retired record: trace accounting, any pending
    /// analysis-side dial request, the controller's transition and
    /// verdict, the capture-filter pass on shipped records, and syscall
    /// containment — in exactly that order.
    pub fn observe<L: ProducerLink + ?Sized>(&mut self, rec: &EventRecord, link: &mut L) {
        self.trace.observe(rec);

        // Adaptive capture: the controller watches the link's load signal
        // and degrades (or restores) capture fidelity within the
        // lifeguard's declared policy. Transitions flush first (inside
        // the link's on_engage/on_disengage) so the wire's degraded mark
        // is frame-accurate.
        let mut admit = Verdict::Ship;
        if let Some(ctl) = self.controller.as_mut() {
            if let Some(request) = link.take_degradation_request() {
                ctl.request(request);
            }
            match ctl.tick(link.load_sample(), link.finding_count()) {
                Some(Transition::Engage { widen }) => {
                    link.on_engage();
                    if widen {
                        self.filter.widen_window();
                    }
                }
                Some(Transition::Disengage { tighten, .. }) => {
                    link.on_disengage();
                    if tighten {
                        self.filter
                            .tighten_window_into(&mut self.shipping, |rec| link.ship(rec));
                    }
                }
                None => {}
            }
            admit = ctl.admit(rec);
        }

        // Capture pass: range filter + idempotency window decide what
        // enters the log in one predicate. A record the controller
        // sampled out or kind-dropped never reaches it.
        if admit == Verdict::Ship {
            self.filter
                .capture_into(rec, &mut self.shipping, |rec| link.ship(rec));
        }

        // Containment: stall the syscall until the lifeguard has checked
        // everything that precedes it — which requires flushing the open
        // partial frame. The lock-step ablation synchronises after every
        // record instead.
        if rec.kind == EventKind::Syscall && self.syscall_stall {
            link.contain_syscall();
        } else if !self.decoupled {
            link.lockstep();
        }
    }

    /// Ends the stream: a run ending degraded snaps back first (the
    /// closing fold summaries and final checks happen at full fidelity,
    /// and the open degraded interval closes in the stats), then
    /// outstanding fold counts settle into the link.
    pub fn finish<L: ProducerLink + ?Sized>(mut self, link: &mut L) -> ProducerFinish {
        let degradation = match self.controller.take() {
            Some(ctl) => {
                if ctl.engaged() {
                    link.on_disengage();
                    if self.policy_widen {
                        self.filter
                            .tighten_window_into(&mut self.shipping, |rec| link.ship(rec));
                    }
                }
                ctl.finish()
            }
            None => DegradationStats::default(),
        };
        self.filter
            .finish_into(&mut self.shipping, |rec| link.ship(rec));
        ProducerFinish {
            trace: self.trace,
            capture: self.filter.stats(),
            degradation,
        }
    }
}

/// Where one shipped record goes under a [`ConsumerTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The single consumer (or, for a replay source, the consumer bound
    /// to the record's stream).
    Single,
    /// Exactly one shard owns the record.
    Shard(usize),
    /// Every shard must see the record (allocation-shaped events whose
    /// effect spans addresses).
    Broadcast,
    /// The record belongs to an epoch assigned to `worker`.
    Epoch {
        /// Worker index the record's whole epoch is assigned to.
        worker: usize,
        /// Whether this record closes its epoch — the producer must seal
        /// the worker's frame with the epoch-end mark.
        end_epoch: bool,
    },
}

/// How shipped records map onto consumers — the consumer-side half of the
/// pipeline, with one implementation per consumption shape. Each shape is
/// instantiated over both execution models by its runners: the modeled
/// runner simulates its consumers' clocks on one thread, the live runner
/// gives each consumer an OS thread.
pub trait ConsumerTopology {
    /// Number of consumers the topology fans out to.
    fn consumers(&self) -> usize;

    /// Routes one shipped record. Stateful where order matters
    /// ([`EpochRouted`]), pure elsewhere.
    fn route(&mut self, rec: &EventRecord) -> Route;
}

/// One lifeguard consumes the full stream in order — the paper's base
/// design.
///
/// Execution models: `run_lba` interleaves the consumer's modeled clock
/// with the producer's on one thread (consumption happens at
/// back-pressure, syscall containment and end of stream); `run_live` runs
/// the consumer on its own OS thread against the SPSC frame channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleConsumer;

impl ConsumerTopology for SingleConsumer {
    fn consumers(&self) -> usize {
        1
    }

    fn route(&mut self, _rec: &EventRecord) -> Route {
        Route::Single
    }
}

/// Address-interleaved sharding at 64-byte cache-line granularity: memory
/// records go to the shard owning their line ([`shard_of`]), everything
/// else broadcasts. Sound only for lifeguards whose per-address state is
/// independent (AddrCheck, LockSet) — TaintCheck's register state forms a
/// sequential dependence chain and uses [`EpochRouted`] instead.
///
/// Execution models: `run_lba_parallel` simulates the N lifeguard cores
/// on one thread against a shared [`lba_cache::MemSystem`] (cores `1..=N`,
/// application on 0), draining every shard after each route so the modeled
/// clocks interleave like hardware would; `run_live_parallel` runs one
/// consumer OS thread per shard, each with its own channel, and merges
/// findings (deduplicated) at join.
#[derive(Debug, Clone, Copy)]
pub struct ShardedByLine {
    shards: usize,
}

impl ShardedByLine {
    /// A topology fanning memory records over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedByLine { shards }
    }
}

impl ConsumerTopology for ShardedByLine {
    fn consumers(&self) -> usize {
        self.shards
    }

    fn route(&mut self, rec: &EventRecord) -> Route {
        match shard_of(rec, self.shards) {
            Some(shard) => Route::Shard(shard),
            None => Route::Broadcast,
        }
    }
}

/// Time-sliced fan-out: the stream is cut into contiguous epochs (at
/// every syscall and every `epoch_records` records) and whole epochs go
/// to workers round-robin; a stitch stage folds per-epoch summaries back
/// in global epoch order. Sound for summarizable lifeguards (TaintCheck's
/// transfer-function summaries) whose state composes across epochs.
///
/// Execution models: `run_epoch_parallel` models each worker's clock and
/// the merge core's stitch on one thread; `run_live_epoch_parallel` runs
/// one consumer OS thread per worker plus a merge thread that stitches
/// summaries round-robin as workers finish epochs.
#[derive(Debug, Clone)]
pub struct EpochRouted {
    workers: usize,
    router: EpochRouter,
}

impl EpochRouted {
    /// A topology fanning epochs over `workers` workers, closing an epoch
    /// at every syscall and after every `epoch_records` records.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `epoch_records` is zero.
    #[must_use]
    pub fn new(workers: usize, epoch_records: usize) -> Self {
        EpochRouted {
            workers,
            router: EpochRouter::new(workers, epoch_records),
        }
    }

    /// Total epochs routed so far, the open tail epoch included.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.router.epochs()
    }

    /// Whether the current epoch has routed records but no closing mark
    /// yet — the stream tail, which ships via a plain (unmarked) flush.
    #[must_use]
    pub fn open(&self) -> bool {
        self.router.open()
    }
}

impl ConsumerTopology for EpochRouted {
    fn consumers(&self) -> usize {
        self.workers
    }

    fn route(&mut self, rec: &EventRecord) -> Route {
        let route = self.router.route(rec);
        Route::Epoch {
            worker: route.worker,
            end_epoch: route.end_epoch,
        }
    }
}

/// Offline replay: the consumers' inputs are flight-recorder streams, one
/// per original channel, so routing was fixed when the recording was made
/// — every frame already sits in its stream and each consumer replays its
/// stream independently ([`Route::Single`] per stream).
///
/// Execution models: `run_replay` (and `run_replay_epoch` for epoch-mode
/// recordings) replay the streams sequentially on the host with modeled
/// lifeguard clocks; there is no live variant because replay has no
/// producer to decouple from.
#[derive(Debug, Clone, Copy)]
pub struct ReplaySource {
    streams: usize,
}

impl ReplaySource {
    /// A replay source over `streams` recorded streams.
    #[must_use]
    pub fn new(streams: usize) -> Self {
        ReplaySource { streams }
    }
}

impl ConsumerTopology for ReplaySource {
    fn consumers(&self) -> usize {
        self.streams
    }

    fn route(&mut self, _rec: &EventRecord) -> Route {
        Route::Single
    }
}

/// One lifeguard in the mode/monitor registry: its stable name, a
/// factory, and which consumer topologies are sound for it. The
/// experiment layer, the benchmarks (`lba_bench::pipeline::lifeguards`)
/// and the cross-mode equivalence suite all derive their enumerations
/// from [`MONITORS`], so a new lifeguard lands in every harness by
/// adding one row here.
#[derive(Debug, Clone, Copy)]
pub struct MonitorSpec {
    /// Stable lowercase name (matches `Lifeguard::name`).
    pub name: &'static str,
    /// Builds a fresh instance.
    pub make: fn() -> Box<dyn Lifeguard>,
    /// Whether address-interleaved sharding ([`ShardedByLine`]) is sound
    /// and benchmarked for this lifeguard (per-address state only).
    pub shardable: bool,
    /// Whether epoch-parallel summarisation ([`EpochRouted`]) is
    /// implemented for this lifeguard.
    pub epoch: bool,
}

/// Every lifeguard the harnesses drive, in figure order: the paper's
/// three plus the MemProfile extension.
pub const MONITORS: [MonitorSpec; 4] = [
    MonitorSpec {
        name: "addrcheck",
        make: || Box::new(lba_lifeguards::AddrCheck::new()),
        shardable: true,
        epoch: false,
    },
    MonitorSpec {
        name: "taintcheck",
        make: || Box::new(lba_lifeguards::TaintCheck::new()),
        shardable: false,
        epoch: true,
    },
    MonitorSpec {
        name: "lockset",
        make: || Box::new(lba_lifeguards::LockSet::new()),
        shardable: true,
        epoch: false,
    },
    MonitorSpec {
        name: "memprofile",
        make: || Box::new(lba_lifeguards::MemProfile::new()),
        shardable: false,
        epoch: false,
    },
];

/// Which execution substrate a run mode drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Execution {
    /// Deterministic co-simulation with modeled clocks, on one thread.
    Modeled,
    /// Real OS threads over real channels; no modeled clocks.
    Live,
    /// Offline replay of a flight-recorder stream set.
    Replay,
}

/// Which [`ConsumerTopology`] shape a run mode instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// [`SingleConsumer`].
    Single,
    /// [`ShardedByLine`].
    Sharded,
    /// [`EpochRouted`].
    Epoch,
    /// [`ReplaySource`].
    Replay,
}

/// The wire- and finding-level accounting one registry run hands back,
/// for cross-mode equivalence pinning.
#[derive(Debug, Clone)]
pub struct ModeOutcome {
    /// Findings as the mode reports them (merged and deduplicated in the
    /// fan-out modes).
    pub findings: Vec<lba_lifeguard::Finding>,
    /// Records shipped, summed over the mode's channels.
    pub records: u64,
    /// Wire bits shipped, summed over the mode's channels.
    pub wire_bits: u64,
}

/// One run mode in the registry: how it executes, what topology it
/// instantiates, which lifeguards it supports, how its outcome relates
/// to the sequential `run_lba` baseline, and which benchmark trajectory
/// series it owns.
#[derive(Debug, Clone, Copy)]
pub struct RunModeSpec {
    /// Stable mode name.
    pub name: &'static str,
    /// Execution substrate.
    pub execution: Execution,
    /// Consumer topology shape.
    pub topology: TopologyKind,
    /// Whether the mode's findings are a dedup-merge over consumers
    /// (compare as sets against the baseline) rather than byte-identical.
    pub merged_findings: bool,
    /// Whether the mode ships exactly the baseline's record count.
    pub exact_records: bool,
    /// Whether the mode ships exactly the baseline's wire bits.
    pub exact_wire: bool,
    /// Whether this lifeguard can run under this mode.
    pub supports: fn(&MonitorSpec) -> bool,
    /// Runs the mode (fan-out modes use 2 consumers) and returns its
    /// outcome. Errors are stringified so one hook type covers run and
    /// replay errors.
    pub run: fn(&lba_isa::Program, &MonitorSpec, &SystemConfig) -> Result<ModeOutcome, String>,
    /// Benchmark trajectory series (`BENCH_pipeline.json`) this mode
    /// owns, in committed order.
    pub bench_series: &'static [&'static str],
}

/// A scratch recording directory for the replay-backed registry hooks.
fn replay_scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lba-mode-{tag}-{}-{seq}", std::process::id()))
}

fn mode_lba(
    program: &lba_isa::Program,
    spec: &MonitorSpec,
    config: &SystemConfig,
) -> Result<ModeOutcome, String> {
    let mut lg = (spec.make)();
    let report = crate::cosim::run_lba(program, lg.as_mut(), config).map_err(|e| e.to_string())?;
    Ok(ModeOutcome {
        records: report.log.records,
        wire_bits: report.log.wire_bits,
        findings: report.pipeline.findings,
    })
}

fn mode_live(
    program: &lba_isa::Program,
    spec: &MonitorSpec,
    config: &SystemConfig,
) -> Result<ModeOutcome, String> {
    let mut lg = (spec.make)();
    let report = crate::live::run_live(program, lg.as_mut(), config).map_err(|e| e.to_string())?;
    Ok(ModeOutcome {
        records: report.log.records,
        wire_bits: report.log.wire_bits,
        findings: report.pipeline.findings,
    })
}

fn mode_lba_parallel(
    program: &lba_isa::Program,
    spec: &MonitorSpec,
    config: &SystemConfig,
) -> Result<ModeOutcome, String> {
    let report = crate::parallel::run_lba_parallel(program, spec.make, 2, config)
        .map_err(|e| e.to_string())?;
    Ok(ModeOutcome {
        records: report.log.records,
        wire_bits: report.log.wire_bits,
        findings: report.pipeline.findings,
    })
}

fn mode_live_parallel(
    program: &lba_isa::Program,
    spec: &MonitorSpec,
    config: &SystemConfig,
) -> Result<ModeOutcome, String> {
    let report = crate::live_parallel::run_live_parallel(program, spec.make, 2, config)
        .map_err(|e| e.to_string())?;
    Ok(ModeOutcome {
        records: report.log.records,
        wire_bits: report.log.wire_bits,
        findings: report.pipeline.findings,
    })
}

fn mode_remote(
    program: &lba_isa::Program,
    spec: &MonitorSpec,
    config: &SystemConfig,
) -> Result<ModeOutcome, String> {
    let report =
        crate::remote::run_remote(program, spec.make, 2, config).map_err(|e| e.to_string())?;
    Ok(ModeOutcome {
        records: report.log.records,
        wire_bits: report.log.wire_bits,
        findings: report.pipeline.findings,
    })
}

fn mode_epoch(
    program: &lba_isa::Program,
    _spec: &MonitorSpec,
    config: &SystemConfig,
) -> Result<ModeOutcome, String> {
    let report =
        crate::epoch_parallel::run_taint_parallel(program, 2, config).map_err(|e| e.to_string())?;
    Ok(ModeOutcome {
        records: report.log.records,
        wire_bits: report.log.wire_bits,
        findings: report.pipeline.findings,
    })
}

fn mode_live_epoch(
    program: &lba_isa::Program,
    _spec: &MonitorSpec,
    config: &SystemConfig,
) -> Result<ModeOutcome, String> {
    let report = crate::epoch_parallel::run_live_taint_parallel(program, 2, config)
        .map_err(|e| e.to_string())?;
    Ok(ModeOutcome {
        records: report.log.records,
        wire_bits: report.log.wire_bits,
        findings: report.pipeline.findings,
    })
}

fn mode_replay(
    program: &lba_isa::Program,
    spec: &MonitorSpec,
    config: &SystemConfig,
) -> Result<ModeOutcome, String> {
    let dir = replay_scratch_dir(spec.name);
    let mut recording = config.clone();
    recording.log.record_to = Some(crate::config::RecordConfig::new(&dir));
    let mut lg = (spec.make)();
    let recorded = crate::cosim::run_lba(program, lg.as_mut(), &recording);
    let replayed = recorded.map_err(|e| e.to_string()).and_then(|_| {
        crate::replay::run_replay(&dir, spec.make, config).map_err(|e| e.to_string())
    });
    let _ = std::fs::remove_dir_all(&dir);
    let report = replayed?;
    Ok(ModeOutcome {
        records: report.log.records,
        wire_bits: report.log.wire_bits,
        findings: report.pipeline.findings,
    })
}

fn mode_replay_epoch(
    program: &lba_isa::Program,
    _spec: &MonitorSpec,
    config: &SystemConfig,
) -> Result<ModeOutcome, String> {
    let dir = replay_scratch_dir("epoch");
    let mut recording = config.clone();
    recording.log.record_to = Some(crate::config::RecordConfig::new(&dir));
    let recorded = crate::epoch_parallel::run_taint_parallel(program, 2, &recording);
    let replayed = recorded.map_err(|e| e.to_string()).and_then(|_| {
        let mut master = lba_lifeguards::TaintCheck::new();
        crate::epoch_parallel::run_replay_epoch(&dir, &mut master, config)
            .map_err(|e| e.to_string())
    });
    let _ = std::fs::remove_dir_all(&dir);
    let report = replayed?;
    Ok(ModeOutcome {
        records: report.log.records,
        wire_bits: report.log.wire_bits,
        findings: report.pipeline.findings,
    })
}

fn supports_all(_spec: &MonitorSpec) -> bool {
    true
}

fn supports_shardable(spec: &MonitorSpec) -> bool {
    spec.shardable
}

fn supports_epoch(spec: &MonitorSpec) -> bool {
    spec.epoch
}

/// Every run mode the harnesses drive, with its topology, support
/// predicate and baseline-equivalence contract. `experiment.rs`,
/// `lba_bench::pipeline` and `tests/equivalence.rs` derive their mode
/// enumerations from this table; the union of `bench_series` (plus the
/// consumption-only `"consume"` series) is exactly the committed
/// `BENCH_pipeline.json` trajectory.
pub const RUN_MODES: [RunModeSpec; 9] = [
    RunModeSpec {
        name: "lba",
        execution: Execution::Modeled,
        topology: TopologyKind::Single,
        merged_findings: false,
        exact_records: true,
        exact_wire: true,
        supports: supports_all,
        run: mode_lba,
        bench_series: &["lba", "lba-faulted", "lba-degraded"],
    },
    RunModeSpec {
        name: "live",
        execution: Execution::Live,
        topology: TopologyKind::Single,
        merged_findings: false,
        exact_records: true,
        exact_wire: true,
        supports: supports_all,
        run: mode_live,
        bench_series: &["live", "live-faulted", "live-degraded"],
    },
    RunModeSpec {
        name: "lba-parallel",
        execution: Execution::Modeled,
        topology: TopologyKind::Sharded,
        merged_findings: true,
        exact_records: false,
        exact_wire: false,
        supports: supports_shardable,
        run: mode_lba_parallel,
        bench_series: &[],
    },
    RunModeSpec {
        name: "live-parallel",
        execution: Execution::Live,
        topology: TopologyKind::Sharded,
        merged_findings: true,
        exact_records: false,
        exact_wire: false,
        supports: supports_shardable,
        run: mode_live_parallel,
        bench_series: &["live-parallel"],
    },
    RunModeSpec {
        name: "remote",
        execution: Execution::Live,
        topology: TopologyKind::Sharded,
        merged_findings: true,
        exact_records: false,
        exact_wire: false,
        supports: supports_shardable,
        run: mode_remote,
        bench_series: &["remote"],
    },
    RunModeSpec {
        name: "epoch-parallel",
        execution: Execution::Modeled,
        topology: TopologyKind::Epoch,
        merged_findings: false,
        exact_records: true,
        exact_wire: false,
        supports: supports_epoch,
        run: mode_epoch,
        bench_series: &["taint-parallel"],
    },
    RunModeSpec {
        name: "live-epoch-parallel",
        execution: Execution::Live,
        topology: TopologyKind::Epoch,
        merged_findings: false,
        exact_records: true,
        exact_wire: false,
        supports: supports_epoch,
        run: mode_live_epoch,
        bench_series: &["live-taint-parallel"],
    },
    RunModeSpec {
        name: "replay",
        execution: Execution::Replay,
        topology: TopologyKind::Replay,
        merged_findings: false,
        exact_records: true,
        exact_wire: true,
        supports: supports_all,
        run: mode_replay,
        bench_series: &["replay"],
    },
    RunModeSpec {
        name: "replay-epoch",
        execution: Execution::Replay,
        topology: TopologyKind::Replay,
        merged_findings: false,
        exact_records: true,
        exact_wire: false,
        supports: supports_epoch,
        run: mode_replay_epoch,
        bench_series: &[],
    },
];

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    use super::*;

    #[test]
    fn monitor_registry_is_consistent() {
        let mut names = HashSet::new();
        for monitor in &MONITORS {
            assert!(
                names.insert(monitor.name),
                "duplicate monitor {}",
                monitor.name
            );
            assert_eq!(
                (monitor.make)().name(),
                monitor.name,
                "factory must build the lifeguard the row names"
            );
        }
        // The experiment layer's LifeguardKind enumerates a subset of the
        // registry; a kind without a registry row would dodge the bench
        // matrix and the equivalence grid.
        for kind in crate::kind::LifeguardKind::ALL {
            assert!(
                MONITORS.iter().any(|m| m.name == kind.name()),
                "{kind} has no registry row"
            );
        }
    }

    #[test]
    fn run_mode_registry_is_consistent() {
        let mut names = HashSet::new();
        for mode in &RUN_MODES {
            assert!(names.insert(mode.name), "duplicate mode {}", mode.name);
            assert!(
                MONITORS.iter().any(|m| (mode.supports)(m)),
                "{} supports no monitor at all",
                mode.name
            );
            // The support predicate must agree with the topology: the
            // sharded shapes admit exactly the shardable monitors, the
            // epoch shapes exactly the epoch-capable ones.
            for monitor in &MONITORS {
                let supported = (mode.supports)(monitor);
                match mode.topology {
                    TopologyKind::Sharded => assert_eq!(
                        supported, monitor.shardable,
                        "{}/{}: sharded support must track the shardable flag",
                        mode.name, monitor.name
                    ),
                    TopologyKind::Epoch => assert_eq!(
                        supported, monitor.epoch,
                        "{}/{}: epoch support must track the epoch flag",
                        mode.name, monitor.name
                    ),
                    TopologyKind::Single | TopologyKind::Replay => {}
                }
            }
            // Wire-exactness is only claimable on top of record-exactness:
            // the same records are a precondition for the same bits.
            if mode.exact_wire {
                assert!(
                    mode.exact_records,
                    "{}: exact wire bits imply exact records",
                    mode.name
                );
            }
        }
    }

    #[test]
    fn bench_series_are_owned_by_one_mode_each() {
        let mut seen = HashSet::new();
        for mode in &RUN_MODES {
            for series in mode.bench_series {
                assert!(
                    seen.insert(*series),
                    "trajectory series {series} owned by two modes"
                );
                assert_ne!(
                    *series, "consume",
                    "the consumption-only series belongs to no run mode"
                );
            }
        }
    }
}
