//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so this vendor crate
//! implements exactly the API subset the workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`, [`Just`], [`any`], integer-range
//! and tuple strategies, [`collection::vec`], the [`prop_oneof!`] /
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, chosen deliberately:
//!
//! * **No shrinking.** A failing case panics with the assertion message
//!   (including any formatted context) instead of minimising the input.
//! * **Deterministic seeding.** Each test's RNG is seeded from its full
//!   module path, so runs are reproducible across machines without a
//!   persistence file; the byte streams still differ per test.
//!
//! Assertions are *not* weakened: every `prop_assert*` failure still fails
//! the test, it just reports the original generated input rather than a
//! shrunken one.

use std::marker::PhantomData;
use std::ops::Range;

/// Run-loop configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator driving strategy evaluation (public so the
/// [`proptest!`] macro expansion can construct it).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test's identifier (its module path), so
    /// every property test draws an independent, reproducible stream.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: state | 1 }
    }

    /// The next 64 raw pseudo-random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A recipe for generating values of one type (subset of
/// `proptest::strategy::Strategy`, without shrink trees).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy yielding one fixed value (subset of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives, as built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; each generation picks one uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical full-range strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary_from(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary_from(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_from(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary_from(rng: &mut TestRng) -> Self {
        core::array::from_fn(|_| T::arbitrary_from(rng))
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_from(rng)
    }
}

/// The canonical strategy for `T`: unconstrained values over its range.
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_strategy_for_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Property assertion; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion; panics (failing the case) on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Property inequality assertion; panics (failing the case) on equality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let ($($pat,)+) = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1_000 {
            let v = crate::Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn union_hits_every_alternative() {
        let strategy = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = crate::TestRng::for_test("union");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_respects_length_range() {
        let strategy = vec(any::<u8>(), 2..5);
        let mut rng = crate::TestRng::for_test("veclen");
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let strategy = (0u8..4).prop_map(|v| v * 10);
        let mut rng = crate::TestRng::for_test("map");
        for _ in 0..50 {
            assert_eq!(strategy.generate(&mut rng) % 10, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, pair in (any::<u16>(), 1u8..5)) {
            prop_assert!(x < 100);
            prop_assert!((1..5).contains(&pair.1));
        }
    }
}
