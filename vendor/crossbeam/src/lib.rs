//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The build environment has no network access, so this vendor crate
//! implements exactly the API subset the workspace uses:
//! [`queue::ArrayQueue`], a bounded MPMC queue. The real crate is lock-free;
//! this stand-in uses a mutexed ring buffer, which preserves the semantics
//! (bounded, FIFO, `push` hands the value back when full) at lower
//! throughput. `lba_transport::live` only relies on the semantics.

pub mod queue {
    //! Concurrent queues (subset of `crossbeam::queue`).

    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// A bounded FIFO queue (API subset of `crossbeam::queue::ArrayQueue`).
    #[derive(Debug)]
    pub struct ArrayQueue<T> {
        inner: Mutex<VecDeque<T>>,
        cap: usize,
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `cap` elements.
        ///
        /// # Panics
        ///
        /// Panics if `cap` is zero, matching the real crate.
        #[must_use]
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            ArrayQueue {
                inner: Mutex::new(VecDeque::with_capacity(cap)),
                cap,
            }
        }

        /// Attempts to push `value`; returns it back in `Err` when full.
        ///
        /// # Errors
        ///
        /// Returns `Err(value)` if the queue is at capacity.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.inner.lock().unwrap();
            if q.len() == self.cap {
                Err(value)
            } else {
                q.push_back(value);
                Ok(())
            }
        }

        /// Pops the oldest element, or `None` when empty.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// The maximum number of elements the queue holds.
        #[must_use]
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// The number of elements currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::ArrayQueue;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = ArrayQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_returns_value() {
        let q = ArrayQueue::new(1);
        q.push(10).unwrap();
        assert_eq!(q.push(11), Err(11));
        assert_eq!(q.pop(), Some(10));
        q.push(11).unwrap();
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: ArrayQueue<u8> = ArrayQueue::new(0);
    }

    #[test]
    fn cross_thread_transfer() {
        let q = Arc::new(ArrayQueue::new(8));
        let tx = Arc::clone(&q);
        let writer = std::thread::spawn(move || {
            for i in 0..1000u64 {
                let mut v = i;
                while let Err(back) = tx.push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut expected = 0;
        while expected < 1000 {
            if let Some(v) = q.pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        writer.join().unwrap();
    }
}
