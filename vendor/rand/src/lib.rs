//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this vendor crate
//! implements exactly the API subset the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and the [`Rng`] extension
//! methods `gen` / `gen_range`. The generator is xoshiro256**, which has
//! excellent statistical quality for workload synthesis; it makes no
//! cryptographic claims (neither does the use site).

use core::ops::Range;

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type, fixed per generator.
    type Seed;

    /// Builds the generator from a fixed seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (stand-in for `rand::distributions::Standard` sampling).
pub trait SampleUniform: Sized + Copy {
    /// Draws one uniformly distributed value over the type's full range.
    fn sample_full(rng: &mut dyn RngCore) -> Self;
    /// Converts to `u128` for range reduction.
    fn to_u128(self) -> u128;
    /// Converts back from `u128` after range reduction.
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_full(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// The object-safe core of a generator (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 raw pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value of an inferred type, uniformly over its full range.
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_full(self)
    }

    /// Draws one value uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        let lo = range.start.to_u128();
        let span = range.end.to_u128() - lo;
        // 128-bit multiply-shift reduction: unbiased enough for workload
        // synthesis and avoids a modulo on the hot path.
        let raw = u128::from(self.next_u64());
        T::from_u128(lo + ((raw * span) >> 64))
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Same shape: 32-byte seed, `u64` output.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start from the all-zero state; splitmix the
            // words once so even degenerate seeds produce a usable state.
            let mut mix = 0x9e37_79b9_7f4a_7c15u64;
            for word in &mut s {
                mix = mix.wrapping_add(*word).wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = mix;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *word = z ^ (z >> 31);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::from_seed([1; 32]);
        let mut b = StdRng::from_seed([2; 32]);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::from_seed([3; 32]);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::from_seed([4; 32]);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
