//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this vendor crate
//! implements exactly the API subset the workspace's bench targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] with a
//! [`Bencher::iter`] closure, per-group [`Throughput`] / sample-size
//! configuration, and the [`criterion_group!`] / [`criterion_main!`] macros.
//! It measures wall-clock time over a fixed number of timed iterations and
//! prints a mean (plus element throughput when configured) — no statistical
//! analysis, plots, or baseline comparison, but the same source compiles and
//! the numbers are usable for coarse regression spotting.
//!
//! Like real criterion, passing `--test` (`cargo bench -- --test`) runs
//! every benchmark exactly once as a smoke check instead of sampling — CI
//! uses this so bench targets cannot bit-rot without anyone noticing.

use std::time::Instant;

/// Whether the process was invoked in test mode (`--test` among the CLI
/// arguments), mirroring real criterion's smoke-check flag. Benches doing
/// their own warm-up/sampling outside the harness should consult this to
/// keep the CI smoke step fast.
#[must_use]
pub fn is_test_mode() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// Declared workload size for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level harness handle (API subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Registers a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration workload size for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: if is_test_mode() { 1 } else { self.sample_size },
            total_nanos: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total_nanos / bencher.iters as f64
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / mean * 1e3)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / mean * 1e9 / f64::from(1u32 << 20)
                )
            }
            _ => String::new(),
        };
        println!(
            "bench {}/{}: {:>12.1} ns/iter over {} iters{}",
            self.name, id, mean, bencher.iters, rate
        );
        self
    }

    /// Ends the group (kept for API parity; reporting is per-function).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total_nanos: f64,
    iters: u64,
}

impl Bencher {
    /// Runs `f` once untimed (warm-up), then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _warmup = black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            let _ = black_box(f());
        }
        self.total_nanos += start.elapsed().as_nanos() as f64;
        self.iters += self.samples as u64;
    }
}

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // one warm-up + three timed iterations
        assert_eq!(runs, 4);
    }

    #[test]
    fn macros_expand() {
        fn noop(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(group_under_test, noop);
        group_under_test();
    }
}
