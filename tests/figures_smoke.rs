//! Shape assertions on the reproduced figures: the relationships the paper
//! reports must hold in our reproduction (who wins, by roughly what
//! factor), even though absolute numbers come from our substitute
//! substrate (EXPERIMENTS.md).

use lba::experiment::{self, summarize};
use lba::{LifeguardKind, SystemConfig};

fn config() -> SystemConfig {
    SystemConfig::default()
}

#[test]
fn figure2_lockset_panel_shape() {
    let rows = experiment::figure2(LifeguardKind::LockSet, &config(), 1).unwrap();
    assert_eq!(rows.len(), 2, "water and zchaff");
    for row in &rows {
        // Valgrind lifeguards incur large slowdowns…
        assert!(
            row.valgrind > 8.0,
            "{}: valgrind only {:.1}x",
            row.benchmark,
            row.valgrind
        );
        // …and LBA is markedly faster, though still a slowdown.
        assert!(row.lba > 1.5, "{}: lba suspiciously fast", row.benchmark);
        assert!(
            row.speedup() > 2.0,
            "{}: speedup {:.1}x too small",
            row.benchmark,
            row.speedup()
        );
    }
}

#[test]
fn figure2_addrcheck_panel_shape() {
    let rows = experiment::figure2(LifeguardKind::AddrCheck, &config(), 1).unwrap();
    assert_eq!(rows.len(), 7);
    let summary = summarize(LifeguardKind::AddrCheck, &rows);
    // Paper: 3.9x average; we accept the band around it.
    assert!(
        (2.0..6.5).contains(&summary.lba_avg),
        "AddrCheck LBA average {:.1}x out of band",
        summary.lba_avg
    );
    // Paper: Valgrind 10-85x band (averages well above LBA).
    assert!(summary.valgrind_avg > 3.0 * summary.lba_avg);
    // Paper: LBA lifeguards are 4-19x faster than Valgrind lifeguards.
    assert!(
        summary.speedup_min > 2.5,
        "min speedup {:.1}",
        summary.speedup_min
    );
    assert!(
        summary.speedup_max < 25.0,
        "max speedup {:.1}",
        summary.speedup_max
    );
}

#[test]
fn lifeguard_cost_ordering_matches_paper() {
    // Paper §3: AddrCheck 3.9x < TaintCheck 4.8x < LockSet 9.7x.
    let addr = summarize(
        LifeguardKind::AddrCheck,
        &experiment::figure2(LifeguardKind::AddrCheck, &config(), 1).unwrap(),
    );
    let taint = summarize(
        LifeguardKind::TaintCheck,
        &experiment::figure2(LifeguardKind::TaintCheck, &config(), 1).unwrap(),
    );
    let lock = summarize(
        LifeguardKind::LockSet,
        &experiment::figure2(LifeguardKind::LockSet, &config(), 1).unwrap(),
    );
    assert!(
        addr.lba_avg < taint.lba_avg && taint.lba_avg < lock.lba_avg,
        "ordering violated: {:.1} / {:.1} / {:.1}",
        addr.lba_avg,
        taint.lba_avg,
        lock.lba_avg
    );
}

#[test]
fn compression_average_is_below_one_byte_per_instruction() {
    let rows = experiment::compression_table(&config(), 1).unwrap();
    let avg: f64 = rows.iter().map(|r| r.bytes_per_instruction).sum::<f64>() / rows.len() as f64;
    assert!(avg < 1.0, "average {avg:.3} B/inst");
    for row in &rows {
        assert!(
            row.bytes_per_instruction < 1.0,
            "{}: {:.3}",
            row.benchmark,
            row.bytes_per_instruction
        );
    }
}

#[test]
fn filtering_extension_reduces_slowdown_without_losing_soundness() {
    let rows = experiment::ext_filtering(&config(), 1).unwrap();
    for row in &rows {
        assert!(
            row.filtered <= row.unfiltered + 1e-9,
            "{}: filtering must not slow things down",
            row.benchmark
        );
        assert!(
            row.dropped_fraction > 0.0,
            "{}: nothing dropped",
            row.benchmark
        );
    }
}

#[test]
fn bench_pipeline_trajectory_has_every_series() {
    // The committed `BENCH_pipeline.json` is the host-throughput ledger
    // the `figures` bin regenerates each PR. The shape validation —
    // every series present, every row fully keyed, the filtered series
    // demonstrably shipping fewer records/wire bits, TaintCheck out of
    // the sharded and filtered series — lives in
    // `lba_bench::pipeline::validate_trajectory`, shared with the
    // `figures --bench-smoke` CI gate so the two cannot drift.
    let json = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_pipeline.json"))
        .expect("committed BENCH_pipeline.json at the repo root");
    lba_bench::pipeline::validate_trajectory(&json).expect("committed trajectory validates");
    let keys = lba_bench::pipeline::trajectory_keys(&json).expect("rows parse");
    assert!(keys.len() >= 30, "expected the full matrix, got {keys:?}");
}

#[test]
fn parallel_extension_scales_lockset() {
    let rows = experiment::ext_parallel(&config(), 1).unwrap();
    assert!(rows.len() >= 3);
    // More shards, less slowdown (weakly monotone).
    for pair in rows.windows(2) {
        assert!(
            pair[1].slowdown <= pair[0].slowdown + 0.05,
            "sharding must not hurt: {} -> {}",
            pair[0].slowdown,
            pair[1].slowdown
        );
    }
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    assert!(
        last.slowdown < first.slowdown * 0.75,
        "4 shards should pay off"
    );
}
