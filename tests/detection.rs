//! End-to-end detection tests: every planted bug is caught by the right
//! lifeguard under every execution model, and the clean benchmarks stay
//! clean.

use lba::parallel::run_lba_parallel;
use lba::{run_dbi, run_lba, run_live, LifeguardKind, SystemConfig};
use lba_lifeguard::FindingKind;
use lba_workloads::{bugs, Benchmark};

fn config() -> SystemConfig {
    SystemConfig::default()
}

#[test]
fn memory_bugs_caught_under_all_execution_models() {
    let program = bugs::memory_bugs();
    let expected = [
        FindingKind::UnallocatedAccess,
        FindingKind::DoubleFree,
        FindingKind::InvalidFree,
        FindingKind::Leak,
    ];

    let mut lg = LifeguardKind::AddrCheck.make_lba();
    let lba = run_lba(&program, lg.as_mut(), &config()).unwrap();
    let mut lg = LifeguardKind::AddrCheck.make_dbi();
    let dbi = run_dbi(&program, lg.as_mut(), &config()).unwrap();
    let mut lg = LifeguardKind::AddrCheck.make_lba();
    let live = run_live(&program, lg.as_mut(), &config()).unwrap();
    let par = run_lba_parallel(
        &program,
        || LifeguardKind::AddrCheck.make_lba(),
        4,
        &config(),
    )
    .unwrap();

    for kind in expected {
        assert!(
            lba.findings.iter().any(|f| f.kind == kind),
            "LBA missing {kind}"
        );
        assert!(
            dbi.findings.iter().any(|f| f.kind == kind),
            "DBI missing {kind}"
        );
        assert!(
            live.findings.iter().any(|f| f.kind == kind),
            "live missing {kind}"
        );
        assert!(
            par.findings.iter().any(|f| f.kind == kind),
            "parallel missing {kind}"
        );
    }
}

#[test]
fn exploit_caught_and_attack_details_reported() {
    let program = bugs::exploit();
    let mut lg = LifeguardKind::TaintCheck.make_lba();
    let report = run_lba(&program, lg.as_mut(), &config()).unwrap();
    let finding = report
        .findings_of(FindingKind::TaintedJump)
        .next()
        .expect("tainted jump reported");
    // The finding names the hijacked target, which must be the privileged
    // entry the payload encodes.
    let payload_target = u64::from_le_bytes(program.input()[32..40].try_into().unwrap());
    assert_eq!(finding.addr, payload_target);
}

#[test]
fn tainted_syscall_argument_caught() {
    let program = bugs::tainted_syscall();
    let mut lg = LifeguardKind::TaintCheck.make_lba();
    let report = run_lba(&program, lg.as_mut(), &config()).unwrap();
    assert!(report
        .findings_of(FindingKind::TaintedSyscallArg)
        .next()
        .is_some());
}

#[test]
fn data_race_caught_in_lba_and_dbi() {
    let program = bugs::data_race();
    let mut lg = LifeguardKind::LockSet.make_lba();
    let lba = run_lba(&program, lg.as_mut(), &config()).unwrap();
    assert!(lba.findings_of(FindingKind::DataRace).next().is_some());

    let mut lg = LifeguardKind::LockSet.make_dbi();
    let dbi = run_dbi(&program, lg.as_mut(), &config()).unwrap();
    assert!(dbi.findings.iter().any(|f| f.kind == FindingKind::DataRace));
}

#[test]
fn lba_and_dbi_produce_identical_findings_on_bug_programs() {
    for (program, kind) in [
        (bugs::memory_bugs(), LifeguardKind::AddrCheck),
        (bugs::exploit(), LifeguardKind::TaintCheck),
        (bugs::data_race(), LifeguardKind::LockSet),
    ] {
        let mut lg = kind.make_lba();
        let lba = run_lba(&program, lg.as_mut(), &config()).unwrap();
        // DBI runs the *same* analysis; the LockSet DBI variant differs
        // only in cost model, not semantics.
        let mut lg = kind.make_dbi();
        let dbi = run_dbi(&program, lg.as_mut(), &config()).unwrap();
        assert_eq!(
            lba.findings,
            dbi.findings,
            "{}: finding mismatch",
            program.name()
        );
    }
}

#[test]
fn clean_benchmarks_stay_clean_everywhere() {
    for benchmark in [Benchmark::Bc, Benchmark::Gs, Benchmark::W3m] {
        let program = benchmark.build();
        for kind in [LifeguardKind::AddrCheck, LifeguardKind::TaintCheck] {
            let mut lg = kind.make_lba();
            let report = run_lba(&program, lg.as_mut(), &config()).unwrap();
            assert!(
                report.findings.is_empty(),
                "{}/{}: {:?}",
                benchmark.name(),
                kind.name(),
                report.findings
            );
        }
    }
    for benchmark in Benchmark::MULTI_THREADED {
        let program = benchmark.build();
        let mut lg = LifeguardKind::LockSet.make_lba();
        let report = run_lba(&program, lg.as_mut(), &config()).unwrap();
        assert!(
            report.findings.is_empty(),
            "{}: {:?}",
            benchmark.name(),
            report.findings
        );
    }
}
