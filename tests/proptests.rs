//! Property-based tests over the core data structures and invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use lba_cache::{Access, CacheConfig, MemSystem, MemSystemConfig, SetAssocCache};
use lba_compress::{
    BitReader, BitWriter, FrameConfig, FrameDecoder, FrameEncoder, LogCompressor, LogDecompressor,
    FRAME_LINE_BYTES,
};
use lba_isa::Instruction;
use lba_lifeguard::DispatchEngine;
use lba_lifeguards::{LockSet, TaintCheck};
use lba_mem::{layout, HeapAllocator, Memory};
use lba_record::{EventKind, EventRecord};
use lba_transport::{LogBufferModel, TimedFrame};

fn arb_operand() -> impl Strategy<Value = Option<u8>> {
    prop_oneof![Just(None), (0u8..16).prop_map(Some)]
}

/// Arbitrary event records, constrained like real capture output (the
/// compressor is allowed to rely on size being the access width etc.).
fn arb_record() -> impl Strategy<Value = EventRecord> {
    (
        0u64..1 << 20,
        0usize..EventKind::COUNT,
        0u8..4,
        arb_operand(),
        arb_operand(),
        arb_operand(),
        any::<u64>(),
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
    )
        .prop_map(|(pc, kind_idx, tid, in1, in2, out, addr, width)| {
            let kind = EventKind::ALL[kind_idx];
            EventRecord {
                pc: 0x1000 + pc * 8,
                kind,
                tid,
                in1,
                in2,
                out,
                addr: if kind.has_addr() { addr } else { 0 },
                size: match kind {
                    EventKind::Load | EventKind::Store => width,
                    EventKind::Branch => u32::from(addr % 2 == 0),
                    EventKind::Alloc | EventKind::Recv => (addr % 4096) as u32,
                    EventKind::Syscall => (addr % 64) as u32,
                    _ => 0,
                },
            }
        })
}

/// A record stream with realistic per-PC consistency: the same PC always
/// carries the same static fields (true of real capture output, since a PC
/// names one instruction).
fn arb_stream() -> impl Strategy<Value = Vec<EventRecord>> {
    vec(arb_record(), 1..200).prop_map(|mut records| {
        use std::collections::HashMap;
        let mut canonical: HashMap<u64, EventRecord> = HashMap::new();
        for rec in &mut records {
            let proto = *canonical.entry(rec.pc).or_insert(*rec);
            rec.kind = proto.kind;
            rec.in1 = proto.in1;
            rec.in2 = proto.in2;
            rec.out = proto.out;
            if matches!(proto.kind, EventKind::Load | EventKind::Store) {
                rec.size = proto.size;
            }
            if matches!(
                proto.kind,
                EventKind::Branch | EventKind::Jump | EventKind::Call
            ) {
                rec.addr = proto.addr;
            }
            if proto.kind == EventKind::Syscall {
                rec.size = proto.size;
            }
            if !proto.kind.has_addr() {
                rec.addr = 0;
            }
        }
        records
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compressor_round_trips_any_consistent_stream(records in arb_stream()) {
        let mut compressor = LogCompressor::new();
        let mut writer = BitWriter::new();
        for rec in &records {
            compressor.encode(rec, &mut writer);
        }
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        let mut decompressor = LogDecompressor::new();
        for (i, rec) in records.iter().enumerate() {
            let got = decompressor.decode(&mut reader);
            prop_assert_eq!(got.as_ref().ok(), Some(rec), "record {} mismatched", i);
        }
    }

    #[test]
    fn raw_record_encoding_round_trips(rec in arb_record()) {
        let decoded = EventRecord::decode_raw(&rec.encode_raw());
        prop_assert_eq!(decoded.ok(), Some(rec));
    }

    #[test]
    fn instruction_encoding_round_trips(bytes in any::<[u8; 8]>()) {
        // decode ∘ encode = id on every decodable word.
        if let Ok(inst) = Instruction::decode(bytes) {
            let round = Instruction::decode(inst.encode());
            prop_assert_eq!(round.ok(), Some(inst));
        }
    }

    #[test]
    fn memory_behaves_like_a_byte_map(ops in vec((any::<u16>(), any::<u8>()), 1..300)) {
        let mut memory = Memory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, value) in ops {
            let addr = u64::from(addr);
            memory.write_u8(addr, value);
            model.insert(addr, value);
        }
        for (addr, value) in &model {
            prop_assert_eq!(memory.read_u8(*addr), *value);
        }
    }

    #[test]
    fn allocator_blocks_never_overlap(sizes in vec(1u64..512, 1..40)) {
        let mut heap = HeapAllocator::new(layout::HEAP_BASE, 1 << 20);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            // Free every third block to exercise reuse.
            if i % 3 == 2 {
                if let Some((addr, _)) = live.pop() {
                    prop_assert!(heap.free(addr).is_ok());
                }
            }
            let addr = heap.alloc(*size).unwrap();
            let len = heap.live_block_len(addr).unwrap();
            prop_assert!(len >= *size);
            for &(other, olen) in &live {
                prop_assert!(
                    addr + len <= other || other + olen <= addr,
                    "blocks {:#x}+{} and {:#x}+{} overlap", addr, len, other, olen
                );
            }
            live.push((addr, len));
        }
    }

    #[test]
    fn allocator_double_free_always_detected(sizes in vec(1u64..128, 1..20)) {
        let mut heap = HeapAllocator::new(layout::HEAP_BASE, 1 << 20);
        let addrs: Vec<u64> = sizes.iter().map(|&s| heap.alloc(s).unwrap()).collect();
        for &addr in &addrs {
            prop_assert!(heap.free(addr).is_ok());
        }
        for &addr in &addrs {
            let double = matches!(heap.free(addr), Err(lba_mem::HeapError::DoubleFree { addr: a }) if a == addr);
            prop_assert!(double, "double free of {:#x} not classified", addr);
        }
    }

    #[test]
    fn log_buffer_is_fifo_and_conserves_bits(
        frames in vec((1u32..500, 1usize..8), 1..100)
    ) {
        let mut buffer = LogBufferModel::new(1 << 20);
        for (i, (records, lines)) in frames.iter().enumerate() {
            buffer.try_push(TimedFrame {
                bytes: vec![0; lines * FRAME_LINE_BYTES],
                records: *records,
                ready_at: i as u64,
            }).unwrap();
        }
        let total: u64 = frames.iter().map(|(_, l)| (l * FRAME_LINE_BYTES) as u64 * 8).sum();
        prop_assert_eq!(buffer.occupied_bits(), total);
        for (i, (records, lines)) in frames.iter().enumerate() {
            let frame = buffer.pop().unwrap();
            prop_assert_eq!(frame.records, *records);
            prop_assert_eq!(frame.wire_bits(), (lines * FRAME_LINE_BYTES) as u64 * 8);
            prop_assert_eq!(frame.ready_at, i as u64);
        }
        prop_assert_eq!(buffer.occupied_bits(), 0);
    }

    #[test]
    fn framed_codec_round_trips_across_arbitrary_boundaries(
        records in arb_stream(),
        records_per_frame in 1usize..40,
        compress in any::<bool>(),
        flush_seed in any::<u64>(),
    ) {
        // The chunked codec must reproduce any consistent stream exactly,
        // whatever the frame size and wherever flushes land (syscalls can
        // seal a frame after any record).
        let config = FrameConfig { records_per_frame, compress };
        let mut enc = FrameEncoder::new(config);
        let mut frames = Vec::new();
        let mut lcg = flush_seed;
        for rec in &records {
            frames.extend(enc.push(rec));
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if lcg % 5 == 0 {
                frames.extend(enc.flush());
            }
        }
        frames.extend(enc.flush());
        prop_assert_eq!(enc.pending_records(), 0);

        let mut dec = FrameDecoder::new(config);
        let mut out = Vec::new();
        for frame in &frames {
            prop_assert_eq!(frame.bytes.len() % FRAME_LINE_BYTES, 0, "line-multiple frames");
            dec.decode_frame(&frame.bytes, &mut out).expect("frame decodes");
        }
        prop_assert_eq!(out, records);
    }

    #[test]
    fn cache_small_working_set_always_hits_after_warmup(lines in vec(0u64..4, 2..60)) {
        // 4 distinct lines in a 4-way cache never evict each other.
        let mut cache = SetAssocCache::new(CacheConfig { size_bytes: 16 << 10, line_bytes: 64, assoc: 4 });
        let base = 0x1000u64;
        // The four lines map to the same set only if they alias; use
        // same-set addresses spaced by way stride (sets * line).
        let stride = 64 * (16 << 10) / (64 * 4);
        for i in 0..4u64 {
            cache.access(base + i * stride, false);
        }
        for &line in &lines {
            let access = cache.access(base + line * stride, false);
            prop_assert_eq!(access, Access::Hit);
        }
    }

    #[test]
    fn taint_never_appears_without_a_source(records in arb_stream()) {
        // Feed an arbitrary stream *without* Recv events: TaintCheck must
        // stay silent no matter what.
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let engine = DispatchEngine::default();
        let mut findings = Vec::new();
        let mut lifeguard = TaintCheck::new();
        for rec in records.iter().filter(|r| r.kind != EventKind::Recv) {
            engine.deliver(&mut lifeguard, rec, &mut mem, 1, &mut findings);
        }
        prop_assert!(findings.is_empty(), "spurious findings: {:?}", findings);
    }

    #[test]
    fn single_thread_never_races(records in arb_stream()) {
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let engine = DispatchEngine::default();
        let mut findings = Vec::new();
        let mut lifeguard = LockSet::new();
        for rec in &records {
            let mut rec = *rec;
            rec.tid = 0; // collapse to one thread
            engine.deliver(&mut lifeguard, &rec, &mut mem, 1, &mut findings);
        }
        prop_assert!(findings.is_empty(), "single-thread race: {:?}", findings);
    }

    #[test]
    fn fully_locked_accesses_never_race(
        writes in vec((0u64..16, 0u8..3), 1..80)
    ) {
        // Any interleaving of lock-protected writes to 16 words by up to 3
        // threads is race-free under Eraser.
        let mut mem = MemSystem::new(MemSystemConfig::dual_core());
        let engine = DispatchEngine::default();
        let mut findings = Vec::new();
        let mut lifeguard = LockSet::new();
        let lock_addr = layout::GLOBAL_BASE + 0x500;
        for (word, tid) in writes {
            let addr = layout::HEAP_BASE + word * 4;
            let lock = EventRecord {
                pc: 0x1000, kind: EventKind::Lock, tid,
                in1: Some(1), in2: None, out: None, addr: lock_addr, size: 0,
            };
            let store = EventRecord::store(0x1008, tid, Some(2), Some(3), addr, 4);
            let unlock = EventRecord { kind: EventKind::Unlock, pc: 0x1010, ..lock };
            engine.deliver(&mut lifeguard, &lock, &mut mem, 1, &mut findings);
            engine.deliver(&mut lifeguard, &store, &mut mem, 1, &mut findings);
            engine.deliver(&mut lifeguard, &unlock, &mut mem, 1, &mut findings);
        }
        prop_assert!(findings.is_empty(), "locked writes raced: {:?}", findings);
    }
}
