//! Batched-vs-per-record equivalence: frame-granular consumption
//! (`pop_frame` + `deliver_batch`, the default) must be observationally
//! identical to the per-record baseline (`batch_dispatch = false`) — same
//! findings, same modeled cycle totals, same wire stream — across
//! programs, lifeguards, frame sizes and buffer budgets.

use proptest::prelude::*;

use lba::parallel::run_lba_parallel;
use lba::{run_lba, run_live, LogStats, SystemConfig};
use lba_isa::Program;
use lba_lifeguard::Lifeguard;
use lba_lifeguards::{AddrCheck, LockSet, MemProfile, TaintCheck};
use lba_workloads::{bugs, Benchmark};

fn make_lifeguard(idx: usize) -> Box<dyn Lifeguard> {
    match idx {
        0 => Box::new(AddrCheck::new()),
        1 => Box::new(TaintCheck::new()),
        2 => Box::new(LockSet::new()),
        _ => Box::new(MemProfile::new()),
    }
}

fn make_program(idx: usize) -> Program {
    match idx {
        0 => bugs::memory_bugs(),
        1 => bugs::exploit(),
        2 => bugs::data_race(),
        3 => bugs::tainted_syscall(),
        _ => Benchmark::Bc.build(),
    }
}

/// The log statistics that must be bit-identical between the two paths.
fn wire_view(log: &LogStats) -> (u64, u64, u64, u64, u64) {
    (
        log.records,
        log.filtered,
        log.frames,
        log.compressed_bits,
        log.wire_bits,
    )
}

fn assert_paths_equivalent(
    program: &Program,
    lifeguard_idx: usize,
    records_per_frame: usize,
    buffer_bytes: u64,
) {
    let mut batched_cfg = SystemConfig::default();
    batched_cfg.log.records_per_frame = records_per_frame;
    batched_cfg.log.buffer_bytes = buffer_bytes;
    batched_cfg.log.batch_dispatch = true;
    let mut per_record_cfg = batched_cfg.clone();
    per_record_cfg.log.batch_dispatch = false;

    let mut lg = make_lifeguard(lifeguard_idx);
    let batched = run_lba(program, lg.as_mut(), &batched_cfg).expect("batched run");
    let mut lg = make_lifeguard(lifeguard_idx);
    let per_record = run_lba(program, lg.as_mut(), &per_record_cfg).expect("per-record run");

    let what = format!(
        "{} / lifeguard {lifeguard_idx} / frame {records_per_frame} / buffer {buffer_bytes}",
        program.name()
    );
    assert_eq!(batched.findings, per_record.findings, "findings: {what}");
    assert_eq!(
        batched.total_cycles, per_record.total_cycles,
        "total_cycles: {what}"
    );
    assert_eq!(
        batched.app_cycles, per_record.app_cycles,
        "app_cycles: {what}"
    );
    assert_eq!(
        batched.lifeguard_cycles, per_record.lifeguard_cycles,
        "lifeguard_cycles: {what}"
    );
    assert_eq!(batched.stalls, per_record.stalls, "stalls: {what}");
    assert_eq!(
        wire_view(&batched.log),
        wire_view(&per_record.log),
        "channel stats: {what}"
    );
}

/// The sharded counterpart of [`assert_paths_equivalent`]: frame-granular
/// and per-record consumption must be observationally identical through
/// `run_lba_parallel` too — per-shard cycles, merged findings, and
/// per-shard `ChannelStats` (the modeled channel is deterministic, so the
/// high-water mark must match as well).
fn assert_parallel_paths_equivalent(
    program: &Program,
    lifeguard_idx: usize,
    shards: usize,
    records_per_frame: usize,
) {
    let mut batched_cfg = SystemConfig::default();
    batched_cfg.log.records_per_frame = records_per_frame;
    batched_cfg.log.batch_dispatch = true;
    let mut per_record_cfg = batched_cfg.clone();
    per_record_cfg.log.batch_dispatch = false;

    let make = || make_lifeguard(lifeguard_idx);
    let batched = run_lba_parallel(program, make, shards, &batched_cfg).expect("batched run");
    let per_record =
        run_lba_parallel(program, make, shards, &per_record_cfg).expect("per-record run");

    let what = format!(
        "{} / lifeguard {lifeguard_idx} / {shards} shards / frame {records_per_frame}",
        program.name()
    );
    assert_eq!(batched.findings, per_record.findings, "findings: {what}");
    assert_eq!(
        batched.app_cycles, per_record.app_cycles,
        "app_cycles: {what}"
    );
    assert_eq!(
        batched.shard_cycles, per_record.shard_cycles,
        "shard_cycles: {what}"
    );
    assert_eq!(
        batched.total_cycles, per_record.total_cycles,
        "total_cycles: {what}"
    );
    assert_eq!(
        batched.shard_log, per_record.shard_log,
        "shard stats: {what}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core equivalence property over random programs, lifeguards,
    /// frame sizes and buffer budgets (small budgets force parked-frame
    /// back-pressure through the batched consume path too).
    #[test]
    fn batched_consumption_is_observationally_identical(
        program_idx in 0usize..4,
        lifeguard_idx in 0usize..4,
        records_per_frame in 1usize..400,
        buffer_shift in 6u32..17,
    ) {
        let program = make_program(program_idx);
        assert_paths_equivalent(&program, lifeguard_idx, records_per_frame, 1 << buffer_shift);
    }

    /// The same property through the sharded mode: consumption
    /// granularity must not change per-shard cycles, findings, or channel
    /// statistics, whatever the shard count or frame size. (Sharding
    /// TaintCheck is unsound versus the sequential run, but both
    /// granularities of the *same* sharded computation are still
    /// deterministic and must agree.)
    #[test]
    fn batched_parallel_consumption_is_observationally_identical(
        program_idx in 0usize..4,
        lifeguard_idx in 0usize..4,
        shards in 1usize..5,
        records_per_frame in 1usize..400,
    ) {
        let program = make_program(program_idx);
        assert_parallel_paths_equivalent(&program, lifeguard_idx, shards, records_per_frame);
    }
}

#[test]
fn batched_consumption_matches_on_a_real_benchmark() {
    // One deterministic heavyweight case outside proptest: a real
    // workload with syscall flushes, odd frame size, tight buffer.
    let program = make_program(4);
    assert_paths_equivalent(&program, 0, 7, 1 << 10);
    assert_paths_equivalent(&program, 1, 256, 64 << 10);
    assert_parallel_paths_equivalent(&program, 0, 4, 7);
    assert_parallel_paths_equivalent(&program, 2, 3, 256);
}

#[test]
fn live_mode_agrees_across_consumption_granularities() {
    // The live pipeline has no modeled clock; findings and wire stream
    // must still be identical between the two consumption paths.
    let program = bugs::memory_bugs();
    let mut batched_cfg = SystemConfig::default();
    batched_cfg.log.batch_dispatch = true;
    let mut per_record_cfg = batched_cfg.clone();
    per_record_cfg.log.batch_dispatch = false;

    let mut lg = AddrCheck::new();
    let batched = run_live(&program, &mut lg, &batched_cfg).expect("live batched");
    let mut lg = AddrCheck::new();
    let per_record = run_live(&program, &mut lg, &per_record_cfg).expect("live per-record");
    assert_eq!(batched.findings, per_record.findings);
    assert_eq!(wire_view(&batched.log), wire_view(&per_record.log));
}

#[test]
fn zero_copy_channel_survives_verified_round_trip() {
    // verify_compression decodes every frame with the real codec and
    // cross-checks it against the zero-copy records — a codec regression
    // panics here.
    let program = make_program(4);
    let mut config = SystemConfig::default();
    config.log.verify_compression = true;
    let mut lg = AddrCheck::new();
    let report = run_lba(&program, &mut lg, &config).expect("verified run");
    assert!(report.log.records > 0);
}
