//! Integration of the §1 history capability, the raw-trace workflow and
//! the performance-monitoring lifeguard on real workloads.

use lba_cache::{MemSystem, MemSystemConfig};
use lba_cpu::{Machine, MachineConfig};
use lba_lifeguard::history::HistoryIndex;
use lba_lifeguard::DispatchEngine;
use lba_lifeguards::MemProfile;
use lba_record::{EventKind, EventRecord, TraceReader, TraceWriter};
use lba_workloads::{bugs, Benchmark};

/// Runs a program, returning its full raw trace.
fn capture(program: &lba_isa::Program) -> Vec<u8> {
    let mut machine = Machine::new(program, MachineConfig::default());
    let mut mem = MemSystem::new(MemSystemConfig::single_core());
    let mut writer = TraceWriter::new();
    machine
        .run(&mut mem, |r| writer.push(&r.record))
        .expect("program runs");
    writer.into_bytes()
}

#[test]
fn trace_capture_replay_is_lossless_on_a_benchmark() {
    let program = Benchmark::Bc.build();
    let trace = capture(&program);

    // Replay and re-run must observe identical streams.
    let replayed: Vec<EventRecord> = TraceReader::new(&trace)
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    let mut machine = Machine::new(&program, MachineConfig::default());
    let mut mem = MemSystem::new(MemSystemConfig::single_core());
    let mut live = Vec::new();
    machine.run(&mut mem, |r| live.push(r.record)).unwrap();
    assert_eq!(replayed, live);
}

#[test]
fn history_identifies_the_last_writer_of_the_freed_block() {
    let program = bugs::memory_bugs();
    let trace = capture(&program);
    let mut history = HistoryIndex::new(16);
    let mut free_addr = None;
    for record in TraceReader::new(&trace).unwrap() {
        let record = record.unwrap();
        if record.kind == EventKind::Free && free_addr.is_none() {
            free_addr = Some(record.addr);
        }
        history.observe(&record);
    }
    let free_addr = free_addr.expect("program frees a block");
    let writers = history.last_writers(free_addr + 8);
    assert!(
        !writers.is_empty(),
        "the fill loop wrote the block before the free"
    );
    // The last write to that word happened before the free in log order.
    assert!(writers[0].len >= 8);
}

#[test]
fn history_path_reaches_every_thread() {
    let program = Benchmark::Water.build();
    let trace = capture(&program);
    let mut history = HistoryIndex::new(32);
    for record in TraceReader::new(&trace).unwrap() {
        history.observe(&record.unwrap());
    }
    for tid in 0..4 {
        let path = history.path_to_here(tid);
        assert!(!path.is_empty(), "thread {tid} has control history");
        // Paths are newest-first by sequence number.
        for pair in path.windows(2) {
            assert!(pair[0].seq > pair[1].seq);
        }
    }
}

#[test]
fn memprofile_matches_trace_statistics_on_gzip() {
    let program = Benchmark::Gzip.build();
    let trace = capture(&program);

    let engine = DispatchEngine::default();
    let mut mem = MemSystem::new(MemSystemConfig::dual_core());
    let mut findings = Vec::new();
    let mut profiler = MemProfile::new();
    let mut loads = 0u64;
    let mut stores = 0u64;
    let mut allocs = 0u64;
    for record in TraceReader::new(&trace).unwrap() {
        let record = record.unwrap();
        match record.kind {
            EventKind::Load => loads += 1,
            EventKind::Store => stores += 1,
            EventKind::Alloc => allocs += 1,
            _ => {}
        }
        engine.deliver(&mut profiler, &record, &mut mem, 1, &mut findings);
    }
    let profile = profiler.profile();
    assert_eq!(profile.loads, loads);
    assert_eq!(profile.stores, stores);
    assert_eq!(profile.allocs, allocs);
    assert!(findings.is_empty(), "profiling reports nothing");
    // gzip hammers its hash table: the hottest PC should dominate.
    let hottest = profile.hottest_pcs(1)[0];
    assert!(
        hottest.1 > 1000,
        "hot access site expected, got {hottest:?}"
    );
}
