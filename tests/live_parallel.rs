//! Live-parallel ≡ modeled-parallel: `run_live_parallel` (real threads,
//! real SPSC frame channels) and `run_lba_parallel` (deterministic model)
//! share the router and the frame codec, so for every shard count they
//! must produce identical merged findings and — because the per-shard
//! record streams and frame boundaries match — byte-identical per-shard
//! wire streams.

use lba::parallel::run_lba_parallel;
use lba::{run_live_parallel, ChannelStats, LifeguardKind, SystemConfig};
use lba_workloads::{bugs, Benchmark};

/// The per-shard statistics that must be identical between the modeled
/// and live transports (the high-water mark is timing-dependent in live
/// mode and deliberately excluded).
fn wire_view(stats: &ChannelStats) -> (u64, u64, u64, u64) {
    (
        stats.records,
        stats.frames,
        stats.payload_bits,
        stats.wire_bits,
    )
}

#[test]
fn live_parallel_matches_modeled_parallel_on_bug_workloads() {
    let config = SystemConfig::default();
    for (kind, program) in [
        (LifeguardKind::AddrCheck, bugs::memory_bugs()),
        (LifeguardKind::LockSet, bugs::data_race()),
    ] {
        for shards in [1, 2, 4] {
            let live = run_live_parallel(&program, || kind.make_lba(), shards, &config).unwrap();
            let modeled = run_lba_parallel(&program, || kind.make_lba(), shards, &config).unwrap();
            let what = format!("{kind} / {} / {shards} shards", program.name());
            assert_eq!(live.findings, modeled.findings, "findings: {what}");
            assert!(!live.findings.is_empty(), "bug workload finds bugs: {what}");
            assert_eq!(live.shard_log.len(), shards);
            for (idx, (l, m)) in live.shard_log.iter().zip(&modeled.shard_log).enumerate() {
                assert_eq!(
                    wire_view(l),
                    wire_view(m),
                    "shard {idx} wire stream: {what}"
                );
                assert!(l.frames > 0, "shard {idx} must ship frames: {what}");
                assert!(l.wire_bits >= l.payload_bits, "shard {idx}: {what}");
            }
        }
    }
}

#[test]
fn live_parallel_matches_modeled_parallel_on_a_clean_benchmark() {
    // A real workload: lots of frames per shard, no findings — the wire
    // equality is the whole assertion.
    let config = SystemConfig::default();
    let program = Benchmark::Gzip.build();
    let live =
        run_live_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 3, &config).unwrap();
    let modeled =
        run_lba_parallel(&program, || LifeguardKind::AddrCheck.make_lba(), 3, &config).unwrap();
    assert!(live.findings.is_empty());
    assert_eq!(live.findings, modeled.findings);
    for (l, m) in live.shard_log.iter().zip(&modeled.shard_log) {
        assert_eq!(wire_view(l), wire_view(m));
        assert!(l.frames > 1, "gzip fills multiple frames per shard");
    }
    assert_eq!(live.trace.instructions(), modeled.trace.instructions());
}

#[test]
fn live_parallel_consumption_granularities_agree() {
    // The per-record consumption baseline must see the same stream the
    // frame-batched default does — per shard.
    let program = bugs::memory_bugs();
    let mut batched_cfg = SystemConfig::default();
    batched_cfg.log.batch_dispatch = true;
    let mut per_record_cfg = batched_cfg.clone();
    per_record_cfg.log.batch_dispatch = false;

    let make = || LifeguardKind::AddrCheck.make_lba();
    let batched = run_live_parallel(&program, make, 3, &batched_cfg).unwrap();
    let per_record = run_live_parallel(&program, make, 3, &per_record_cfg).unwrap();
    assert_eq!(batched.findings, per_record.findings);
    for (b, p) in batched.shard_log.iter().zip(&per_record.shard_log) {
        assert_eq!(wire_view(b), wire_view(p));
    }
}
