//! Flight-recorder acceptance: a stream recorded from each of the four
//! run modes replays with findings and per-stream wire-bit totals
//! byte-identical to the original run; damaged recordings produce
//! descriptive errors, never panics; retention bounds disk.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use lba::{
    run_lba, run_live, run_live_parallel, run_replay, run_replay_with, AdaptiveConfig,
    FaultProfile, LifeguardKind, RecordConfig, ReplayError, ReplayMode, SystemConfig,
};
use lba_record::{segment_file_name, StreamError};
use lba_workloads::{bugs, Benchmark};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lba-replay-test-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn recording_config(dir: &PathBuf) -> SystemConfig {
    let mut config = SystemConfig::default();
    config.log.record_to = Some(RecordConfig::new(dir));
    config
}

#[test]
fn cosim_recording_replays_byte_identical() {
    let program = bugs::memory_bugs();
    let dir = temp_dir("cosim");
    let config = recording_config(&dir);
    let kind = LifeguardKind::AddrCheck;
    let mut lg = kind.make_lba();
    let original = run_lba(&program, lg.as_mut(), &config).unwrap();

    let replay = run_replay(&dir, || kind.make_lba(), &config).unwrap();
    assert_eq!(replay.findings, original.findings);
    assert_eq!(replay.streams.len(), 1, "cosim records one stream");
    assert_eq!(replay.total_wire_bits(), original.log.wire_bits);
    assert_eq!(replay.total_records(), original.log.records);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_record_dispatch_recording_replays_byte_identical() {
    // The software-decode (non-zero-copy) channel seals the identical
    // wire stream; its recording must too.
    let program = bugs::data_race();
    let dir = temp_dir("per-record");
    let mut config = recording_config(&dir);
    config.log.batch_dispatch = false;
    let kind = LifeguardKind::LockSet;
    let mut lg = kind.make_lba();
    let original = run_lba(&program, lg.as_mut(), &config).unwrap();

    let replay = run_replay(&dir, || kind.make_lba(), &config).unwrap();
    assert_eq!(replay.findings, original.findings);
    assert_eq!(replay.total_wire_bits(), original.log.wire_bits);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_recording_replays_byte_identical() {
    let program = bugs::exploit();
    let dir = temp_dir("live");
    let config = recording_config(&dir);
    let kind = LifeguardKind::TaintCheck;
    let mut lg = kind.make_lba();
    let original = run_live(&program, lg.as_mut(), &config).unwrap();

    let replay = run_replay(&dir, || kind.make_lba(), &config).unwrap();
    assert_eq!(replay.findings, original.findings);
    assert_eq!(replay.streams.len(), 1, "live records one stream");
    assert_eq!(replay.total_wire_bits(), original.log.wire_bits);
    assert_eq!(replay.total_records(), original.log.records);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn modeled_parallel_recording_replays_byte_identical_per_shard() {
    let program = bugs::memory_bugs();
    let dir = temp_dir("parallel");
    let config = recording_config(&dir);
    let kind = LifeguardKind::AddrCheck;
    let original =
        lba::parallel::run_lba_parallel(&program, || kind.make_lba(), 3, &config).unwrap();

    let replay = run_replay(&dir, || kind.make_lba(), &config).unwrap();
    assert_eq!(replay.findings, original.findings);
    assert_eq!(replay.streams.len(), 3, "one recorded stream per shard");
    for (stream, shard) in replay.streams.iter().zip(&original.shard_log) {
        assert_eq!(stream.wire_bits, shard.wire_bits, "shard {}", stream.stream);
        assert_eq!(stream.records, shard.records, "shard {}", stream.stream);
        assert_eq!(stream.frames, shard.frames, "shard {}", stream.stream);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn live_parallel_recording_replays_byte_identical_per_shard() {
    let program = bugs::memory_bugs();
    let dir = temp_dir("live-parallel");
    let config = recording_config(&dir);
    let kind = LifeguardKind::AddrCheck;
    let original = run_live_parallel(&program, || kind.make_lba(), 3, &config).unwrap();

    let replay = run_replay(&dir, || kind.make_lba(), &config).unwrap();
    assert_eq!(replay.findings, original.findings);
    assert_eq!(replay.streams.len(), 3, "one recorded stream per shard");
    for (stream, shard) in replay.streams.iter().zip(&original.shard_log) {
        assert_eq!(stream.wire_bits, shard.wire_bits, "shard {}", stream.stream);
        assert_eq!(stream.records, shard.records, "shard {}", stream.stream);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_through_a_different_lifeguard_works() {
    // The retroactive-monitoring story: AddrCheck ran live; MemProfile-
    // style reanalysis here is LockSet over the same recorded traffic.
    let program = bugs::data_race();
    let dir = temp_dir("cross-lifeguard");
    let config = recording_config(&dir);
    let mut lg = LifeguardKind::AddrCheck.make_lba();
    run_lba(&program, lg.as_mut(), &config).unwrap();

    let replay = run_replay(&dir, || LifeguardKind::LockSet.make_lba(), &config).unwrap();
    // LockSet over the recorded stream equals LockSet run live.
    let mut lg = LifeguardKind::LockSet.make_lba();
    let direct = run_lba(&program, lg.as_mut(), &SystemConfig::default()).unwrap();
    assert_eq!(replay.findings, direct.findings);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retention_cap_bounds_disk_and_replay_reports_aged_out() {
    let program = Benchmark::Gzip.build();
    let dir = temp_dir("retention");
    let mut config = SystemConfig::default();
    config.log.record_to = Some(RecordConfig {
        dir: dir.clone(),
        segment_bytes: 8 << 10,
        retain_bytes: 24 << 10,
    });
    let kind = LifeguardKind::AddrCheck;
    let mut lg = kind.make_lba();
    let original = run_lba(&program, lg.as_mut(), &config).unwrap();
    assert!(
        original.log.wire_bits / 8 > 24 << 10,
        "workload must outgrow the retention cap for this test to bite"
    );

    let on_disk: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    assert!(
        on_disk <= 24 << 10,
        "retention must cap total segment bytes: {on_disk} B on disk"
    );

    // The aged-out stream cannot be replayed (predictor state starts at
    // segment 0) and says so descriptively.
    let err = run_replay(&dir, || kind.make_lba(), &config).unwrap_err();
    assert!(
        matches!(
            &err,
            ReplayError::Stream(StreamError::MissingSegments {
                expected_seq: 0,
                ..
            })
        ),
        "got: {err}"
    );
    assert!(err.to_string().contains("contiguous from segment 0"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn damaged_recordings_error_descriptively() {
    let program = bugs::memory_bugs();
    let dir = temp_dir("damage");
    let config = recording_config(&dir);
    let kind = LifeguardKind::AddrCheck;
    let mut lg = kind.make_lba();
    run_lba(&program, lg.as_mut(), &config).unwrap();
    let segment = dir.join(segment_file_name(0, 0));
    let pristine = std::fs::read(&segment).unwrap();

    // Truncated mid-record.
    std::fs::write(&segment, &pristine[..pristine.len() - 11]).unwrap();
    let err = run_replay(&dir, || kind.make_lba(), &config).unwrap_err();
    assert!(
        matches!(&err, ReplayError::Stream(StreamError::Truncated { .. })),
        "got: {err}"
    );

    // Missing End record (cut exactly at the record boundary).
    std::fs::write(&segment, &pristine[..pristine.len() - 9]).unwrap();
    let err = run_replay(&dir, || kind.make_lba(), &config).unwrap_err();
    assert!(
        matches!(&err, ReplayError::Stream(StreamError::MissingEnd { .. })),
        "got: {err}"
    );

    // Unknown format version.
    let mut bytes = pristine.clone();
    bytes[5] = b'7';
    std::fs::write(&segment, &bytes).unwrap();
    let err = run_replay(&dir, || kind.make_lba(), &config).unwrap_err();
    assert!(
        matches!(&err, ReplayError::Stream(StreamError::UnknownVersion { version, .. }) if version == "7"),
        "got: {err}"
    );

    // Mid-frame corruption: flip a payload byte, caught by the checksum.
    let mut bytes = pristine.clone();
    let flip = 24 + 21 + 40; // header + frame-record header + into payload
    bytes[flip] ^= 0x55;
    std::fs::write(&segment, &bytes).unwrap();
    let err = run_replay(&dir, || kind.make_lba(), &config).unwrap_err();
    assert!(
        matches!(&err, ReplayError::Stream(StreamError::Corrupt { .. })),
        "got: {err}"
    );
    assert!(err.to_string().contains("checksum mismatch"), "got: {err}");

    // Codec-version mismatch: refused up front, not decoded into garbage.
    let mut bytes = pristine.clone();
    bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
    std::fs::write(&segment, &bytes).unwrap();
    let err = run_replay(&dir, || kind.make_lba(), &config).unwrap_err();
    assert!(
        matches!(&err, ReplayError::CodecMismatch { recorded: 999, .. }),
        "got: {err}"
    );

    // An empty recording directory is its own descriptive error.
    std::fs::remove_file(&segment).unwrap();
    let err = run_replay(&dir, || kind.make_lba(), &config).unwrap_err();
    assert!(matches!(&err, ReplayError::NoStreams { .. }), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn salvage_prefix_replays_checksummed_prefix_of_torn_tail() {
    // Satellite: a torn tail is survivable under `SalvagePrefix` — the
    // proven prefix replays in full and the loss is reported, for every
    // mid-stream damage shape the strict suite pins as fatal.
    let program = bugs::memory_bugs();
    let dir = temp_dir("salvage");
    let config = recording_config(&dir);
    let kind = LifeguardKind::AddrCheck;
    let mut lg = kind.make_lba();
    let original = run_lba(&program, lg.as_mut(), &config).unwrap();
    let segment = dir.join(segment_file_name(0, 0));
    let pristine = std::fs::read(&segment).unwrap();

    // Truncated mid-record: strict refuses, salvage keeps the prefix.
    std::fs::write(&segment, &pristine[..pristine.len() - 11]).unwrap();
    run_replay(&dir, || kind.make_lba(), &config).unwrap_err();
    let report =
        run_replay_with(&dir, || kind.make_lba(), &config, ReplayMode::SalvagePrefix).unwrap();
    assert!(report.is_lossy());
    assert_eq!(report.salvaged.len(), 1);
    let tail = &report.salvaged[0];
    assert_eq!(tail.stream, report.streams[0].stream);
    assert_eq!(tail.frames_salvaged, report.streams[0].frames);
    assert!(
        tail.frames_salvaged < original.log.frames,
        "the torn frame must not be delivered"
    );
    assert!(report.total_records() < original.log.records);
    assert!(report.to_string().contains("tail lost"), "got: {report}");

    // Missing End record (cut exactly at the record boundary).
    std::fs::write(&segment, &pristine[..pristine.len() - 9]).unwrap();
    let report =
        run_replay_with(&dir, || kind.make_lba(), &config, ReplayMode::SalvagePrefix).unwrap();
    assert!(report.is_lossy());
    assert!(report.salvaged[0].detail.contains("End"), "got: {report}");

    // Mid-frame checksum damage salvages everything before the bad frame.
    let mut bytes = pristine.clone();
    bytes[24 + 21 + 40] ^= 0x55;
    std::fs::write(&segment, &bytes).unwrap();
    let report =
        run_replay_with(&dir, || kind.make_lba(), &config, ReplayMode::SalvagePrefix).unwrap();
    assert!(report.is_lossy());
    assert!(
        report.salvaged[0].detail.contains("checksum mismatch"),
        "got: {report}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn salvage_prefix_on_a_multi_segment_tear_keeps_earlier_segments() {
    // Rotation makes the salvage story concrete: tear the *last* segment
    // and every earlier segment's frames still replay.
    let program = Benchmark::Gzip.build();
    let dir = temp_dir("salvage-rotate");
    let mut config = SystemConfig::default();
    config.log.record_to = Some(RecordConfig {
        dir: dir.clone(),
        segment_bytes: 8 << 10,
        retain_bytes: u64::MAX,
    });
    let kind = LifeguardKind::AddrCheck;
    let mut lg = kind.make_lba();
    let original = run_lba(&program, lg.as_mut(), &config).unwrap();

    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    assert!(segments.len() > 2, "workload must force rotation");
    let last = segments.last().unwrap();
    let bytes = std::fs::read(last).unwrap();
    std::fs::write(last, &bytes[..bytes.len() - 11]).unwrap();

    let report =
        run_replay_with(&dir, || kind.make_lba(), &config, ReplayMode::SalvagePrefix).unwrap();
    assert!(report.is_lossy());
    assert!(
        report.salvaged[0].frames_salvaged > 0,
        "frames from intact segments must survive the tear"
    );
    assert!(report.total_records() < original.log.records);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn salvage_prefix_keeps_pre_frame_damage_fatal() {
    // No trustworthy prefix exists when the damage precedes any frame:
    // codec mismatch, unknown version, and an empty directory stay fatal
    // in both modes.
    let program = bugs::memory_bugs();
    let dir = temp_dir("salvage-fatal");
    let config = recording_config(&dir);
    let kind = LifeguardKind::AddrCheck;
    let mut lg = kind.make_lba();
    run_lba(&program, lg.as_mut(), &config).unwrap();
    let segment = dir.join(segment_file_name(0, 0));
    let pristine = std::fs::read(&segment).unwrap();

    let mut bytes = pristine.clone();
    bytes[8..12].copy_from_slice(&999u32.to_le_bytes());
    std::fs::write(&segment, &bytes).unwrap();
    let err =
        run_replay_with(&dir, || kind.make_lba(), &config, ReplayMode::SalvagePrefix).unwrap_err();
    assert!(
        matches!(&err, ReplayError::CodecMismatch { recorded: 999, .. }),
        "got: {err}"
    );

    let mut bytes = pristine.clone();
    bytes[5] = b'7';
    std::fs::write(&segment, &bytes).unwrap();
    let err =
        run_replay_with(&dir, || kind.make_lba(), &config, ReplayMode::SalvagePrefix).unwrap_err();
    assert!(
        matches!(
            &err,
            ReplayError::Stream(StreamError::UnknownVersion { .. })
        ),
        "got: {err}"
    );

    std::fs::remove_file(&segment).unwrap();
    let err =
        run_replay_with(&dir, || kind.make_lba(), &config, ReplayMode::SalvagePrefix).unwrap_err();
    assert!(matches!(&err, ReplayError::NoStreams { .. }), "got: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degraded_spans_ride_the_recording_into_replay() {
    // Tentpole acceptance, replay leg: a recording made while the
    // adaptive controller was engaged carries the degraded mark on its
    // frames, and the replay report surfaces those spans.
    let program = Benchmark::Gzip.build();
    let dir = temp_dir("degraded-replay");
    let mut config = recording_config(&dir);
    config.log.adaptive = Some(AdaptiveConfig {
        engage_permille: 300,
        disengage_permille: 100,
        sample_stride: 16,
        ..AdaptiveConfig::default()
    });
    config.log.fault = Some(FaultProfile::slow_drain(42));
    config.log.buffer_bytes = 2 << 10;
    let kind = LifeguardKind::AddrCheck;
    let mut lg = kind.make_lba();
    let original = run_lba(&program, lg.as_mut(), &config).unwrap();
    assert!(
        !original.degradation.is_empty(),
        "precondition: the recording run must actually degrade"
    );

    let replay = run_replay(&dir, || kind.make_lba(), &config).unwrap();
    assert!(
        replay.total_degraded_frames() > 0,
        "degraded spans must ride the flight-recorder stream"
    );
    assert!(replay.total_degraded_frames() <= replay.streams[0].frames);
    assert_eq!(replay.findings, original.findings);
    assert_eq!(replay.total_records(), original.log.records);
    assert_eq!(replay.total_wire_bits(), original.log.wire_bits);
    assert!(
        !replay.is_lossy(),
        "degradation is not loss at the recorder"
    );
    assert!(
        replay.to_string().contains("degraded frames replayed"),
        "got: {replay}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Record→replay equality holds across programs × lifeguards ×
    /// segment sizes: whatever rotation the segment budget forces, the
    /// replayed findings and wire bits equal the original run's.
    #[test]
    fn record_replay_equality_across_the_grid(
        program_idx in 0usize..3,
        kind_idx in 0usize..3,
        segment_bytes in prop_oneof![Just(512u64), Just(4 << 10), Just(64 << 10), Just(4 << 20)],
    ) {
        let program = match program_idx {
            0 => bugs::memory_bugs(),
            1 => bugs::data_race(),
            _ => bugs::exploit(),
        };
        let kind = LifeguardKind::ALL[kind_idx];
        let dir = temp_dir("grid");
        let mut config = SystemConfig::default();
        config.log.record_to = Some(RecordConfig {
            dir: dir.clone(),
            segment_bytes,
            retain_bytes: u64::MAX,
        });
        let mut lg = kind.make_lba();
        let original = run_lba(&program, lg.as_mut(), &config).unwrap();

        let replay = run_replay(&dir, || kind.make_lba(), &config).unwrap();
        prop_assert_eq!(&replay.findings, &original.findings);
        prop_assert_eq!(replay.total_wire_bits(), original.log.wire_bits);
        prop_assert_eq!(replay.total_records(), original.log.records);
        std::fs::remove_dir_all(&dir).ok();
    }
}
