//! Socket-transport equivalence at the integration level: `run_remote`
//! moves each shard's sealed frames across a real Unix-domain socket
//! under the credit window, and must be *observationally identical* to
//! the in-process `run_live_parallel` — same merged findings, and the
//! same per-shard wire accounting bit for bit, at every worker count.
//! The socket is a transport, not a re-encode.

use proptest::prelude::*;

use lba::{run_live_parallel, run_remote, LifeguardKind, Run, RunMode, RunOutcome, SystemConfig};
use lba_workloads::{bugs, Benchmark};

/// The shardable (program, lifeguard) grid the socket modes are exercised
/// over — one case per sharding-eligible lifeguard, plus a real benchmark.
fn case(index: usize) -> (lba_isa::Program, LifeguardKind) {
    match index {
        0 => (bugs::memory_bugs(), LifeguardKind::AddrCheck),
        1 => (bugs::data_race(), LifeguardKind::LockSet),
        _ => (Benchmark::Gzip.build(), LifeguardKind::AddrCheck),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Remote ≡ live-parallel across worker counts: identical merged
    /// findings, identical per-shard frame/record/wire accounting. The
    /// shard topology is keyed by worker count alone, so each remote
    /// worker's socket must carry exactly the stream the in-process
    /// consumer thread would have drained.
    #[test]
    fn remote_workers_are_observationally_identical_to_in_process_shards(
        case_index in 0usize..3
    ) {
        let (program, kind) = case(case_index);
        let config = SystemConfig::default();
        for workers in [1usize, 2, 4] {
            let live = run_live_parallel(&program, || kind.make_lba(), workers, &config)
                .expect("live-parallel runs clean");
            let remote = run_remote(&program, || kind.make_lba(), workers, &config)
                .expect("remote runs clean");
            let what = format!("{}/{} at {workers} workers", program.name(), kind.name());
            prop_assert_eq!(
                &remote.findings, &live.findings,
                "{}: findings diverge over the socket", &what
            );
            prop_assert_eq!(
                remote.shard_log.len(), live.shard_log.len(),
                "{}: shard count diverges", &what
            );
            for (shard, (r, l)) in remote.shard_log.iter().zip(&live.shard_log).enumerate() {
                prop_assert_eq!(
                    (r.records, r.frames, r.wire_bits, r.payload_bits),
                    (l.records, l.frames, l.wire_bits, l.payload_bits),
                    "{}: shard {} wire accounting diverges over the socket",
                    &what, shard
                );
            }
            prop_assert_eq!(remote.trace.instructions(), live.trace.instructions(), "{}", &what);
        }
    }
}

#[test]
fn builder_remote_mode_is_the_same_run() {
    // The unified builder's `RunMode::Remote` is the same code path as the
    // free function — same findings, same wire accounting.
    let program = bugs::memory_bugs();
    let config = SystemConfig::default();
    let direct = run_remote(&program, || LifeguardKind::AddrCheck.make_lba(), 2, &config)
        .expect("direct call runs clean");
    let built = Run::new(&program)
        .mode(RunMode::Remote)
        .monitor(LifeguardKind::AddrCheck)
        .workers(2)
        .config(&config)
        .run()
        .expect("builder runs clean");
    assert_eq!(built.findings, direct.findings);
    assert_eq!(built.log.wire_bits, direct.log.wire_bits);
    let RunOutcome::Remote(report) = &built else {
        panic!("RunMode::Remote produced a non-remote outcome");
    };
    assert_eq!(report.workers, 2);
}
