//! Equivalence tests between execution modes: the deterministic
//! co-simulation, the live (two-OS-thread) pipeline, the DBI baseline and
//! the sharded parallel runner must all agree on *what* they detect.

use proptest::prelude::*;

use lba::parallel::run_lba_parallel;
use lba::{run_dbi, run_lba, run_live, LifeguardKind, SystemConfig};
use lba_workloads::{bugs, Benchmark};

fn config() -> SystemConfig {
    SystemConfig::default()
}

#[test]
fn live_pipeline_matches_cosim_on_every_bug_program() {
    for (program, kind) in [
        (bugs::memory_bugs(), LifeguardKind::AddrCheck),
        (bugs::exploit(), LifeguardKind::TaintCheck),
        (bugs::tainted_syscall(), LifeguardKind::TaintCheck),
        (bugs::data_race(), LifeguardKind::LockSet),
    ] {
        let mut lg = kind.make_lba();
        let cosim = run_lba(&program, lg.as_mut(), &config()).unwrap();
        let mut lg = kind.make_lba();
        let live = run_live(&program, lg.as_mut(), &config()).unwrap();
        assert_eq!(
            cosim.findings,
            live.findings,
            "{}: live/cosim mismatch",
            program.name()
        );
    }
}

#[test]
fn live_pipeline_matches_cosim_for_all_four_lifeguards() {
    // One lifeguard of each kind, each on a program that exercises it;
    // modeled and live transports must agree finding-for-finding, and the
    // two channels must ship the identical framed byte stream.
    type MakeLifeguard = fn() -> Box<dyn lba_lifeguard::Lifeguard>;
    let cases: Vec<(_, MakeLifeguard)> = vec![
        (bugs::memory_bugs(), || {
            Box::new(lba_lifeguards::AddrCheck::new())
        }),
        (bugs::exploit(), || {
            Box::new(lba_lifeguards::TaintCheck::new())
        }),
        (bugs::data_race(), || {
            Box::new(lba_lifeguards::LockSet::new())
        }),
        (bugs::memory_bugs(), || {
            Box::new(lba_lifeguards::MemProfile::new())
        }),
    ];
    for (program, make) in cases {
        let mut lg = make();
        let cosim = run_lba(&program, lg.as_mut(), &config()).unwrap();
        let mut lg = make();
        let live = run_live(&program, lg.as_mut(), &config()).unwrap();
        assert_eq!(
            cosim.findings,
            live.findings,
            "{}/{}: live/cosim mismatch",
            program.name(),
            make().name()
        );
        assert_eq!(cosim.log.records, live.log.records, "{}", program.name());
        assert_eq!(cosim.log.frames, live.log.frames, "{}", program.name());
        assert_eq!(
            cosim.log.wire_bits,
            live.log.wire_bits,
            "{}",
            program.name()
        );
    }
}

#[test]
fn live_pipeline_matches_cosim_on_a_real_benchmark() {
    let program = Benchmark::Tidy.build();
    let mut lg = LifeguardKind::AddrCheck.make_lba();
    let cosim = run_lba(&program, lg.as_mut(), &config()).unwrap();
    let mut lg = LifeguardKind::AddrCheck.make_lba();
    let live = run_live(&program, lg.as_mut(), &config()).unwrap();
    assert_eq!(cosim.findings, live.findings);
    // The live channel carries real wire bytes: under a byte per
    // instruction with compression on, and identical to the model's.
    assert!(live.log.wire_bytes_per_instruction < 1.0);
    assert_eq!(cosim.log.wire_bits, live.log.wire_bits);
}

#[test]
fn parallel_shards_agree_with_single_lifeguard() {
    for shards in [2usize, 3, 4] {
        let program = bugs::memory_bugs();
        let single = run_lba_parallel(
            &program,
            || LifeguardKind::AddrCheck.make_lba(),
            1,
            &config(),
        )
        .unwrap();
        let sharded = run_lba_parallel(
            &program,
            || LifeguardKind::AddrCheck.make_lba(),
            shards,
            &config(),
        )
        .unwrap();
        // Same set of findings (order may differ across shard counts).
        assert_eq!(
            single.findings.len(),
            sharded.findings.len(),
            "{shards} shards"
        );
        for f in &single.findings {
            assert!(
                sharded
                    .findings
                    .iter()
                    .any(|g| g.kind == f.kind && g.addr == f.addr && g.pc == f.pc),
                "{shards} shards missing {f}"
            );
        }
    }
}

#[test]
fn event_stream_is_identical_across_modes() {
    // LBA and DBI must observe the same retired-instruction stream: same
    // instruction counts, same kind mix.
    let program = Benchmark::Gzip.build();
    let mut lg = LifeguardKind::AddrCheck.make_lba();
    let lba = run_lba(&program, lg.as_mut(), &config()).unwrap();
    let mut lg = LifeguardKind::AddrCheck.make_dbi();
    let dbi = run_dbi(&program, lg.as_mut(), &config()).unwrap();
    assert_eq!(lba.trace, dbi.trace);
}

#[test]
fn lba_runs_are_reproducible() {
    let program = Benchmark::Zchaff.build();
    let run = || {
        let mut lg = LifeguardKind::LockSet.make_lba();
        let r = run_lba(&program, lg.as_mut(), &config()).unwrap();
        (r.total_cycles, r.log.compressed_bits, r.findings.len())
    };
    assert_eq!(
        run(),
        run(),
        "deterministic co-simulation must reproduce exactly"
    );
}

#[test]
fn compression_does_not_change_what_the_lifeguard_sees() {
    let program = bugs::memory_bugs();
    let compressed = {
        let mut lg = LifeguardKind::AddrCheck.make_lba();
        run_lba(&program, lg.as_mut(), &config()).unwrap()
    };
    let raw = {
        let mut cfg = config();
        cfg.log.compression = false;
        let mut lg = LifeguardKind::AddrCheck.make_lba();
        run_lba(&program, lg.as_mut(), &cfg).unwrap()
    };
    assert_eq!(compressed.findings, raw.findings);
    assert_eq!(compressed.trace, raw.trace);
}

/// A finding's cross-shard identity — the same `(kind, pc, addr, tid)`
/// key the sharded modes dedup-merge on, so merged-mode finding sets can
/// be compared against the sequential baseline as sets.
fn finding_keys(findings: &[lba_lifeguard::Finding]) -> std::collections::BTreeSet<String> {
    findings
        .iter()
        .map(|f| format!("{:?}|{:#x}|{:#x}|{}", f.kind, f.pc, f.addr, f.tid))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The registry grid: every run mode in `lba::RUN_MODES`, over every
    /// lifeguard in `lba::MONITORS` its `supports` predicate admits, must
    /// honour its declared equivalence contract against the sequential
    /// `run_lba` baseline — findings byte-identical (or dedup-set equal
    /// for the merged fan-out modes), record counts exact where
    /// `exact_records` promises it, and wire bits exact where
    /// `exact_wire` does. A mode added to the registry is held to its
    /// contract here with no new test code.
    #[test]
    fn registry_grid_agrees_with_the_sequential_baseline(case in 0usize..4) {
        let program = match case {
            0 => bugs::memory_bugs(),
            1 => bugs::exploit(),
            2 => bugs::tainted_syscall(),
            _ => bugs::data_race(),
        };
        let config = config();
        let baseline_mode = lba::RUN_MODES
            .iter()
            .find(|m| m.name == "lba")
            .expect("the sequential baseline is registered");
        for monitor in &lba::MONITORS {
            let baseline =
                (baseline_mode.run)(&program, monitor, &config).expect("baseline runs");
            for mode in &lba::RUN_MODES {
                if !(mode.supports)(monitor) {
                    continue;
                }
                let outcome = (mode.run)(&program, monitor, &config).expect("mode runs");
                let what = format!("{}/{} on {}", mode.name, monitor.name, program.name());
                if mode.merged_findings {
                    prop_assert_eq!(
                        finding_keys(&outcome.findings),
                        finding_keys(&baseline.findings),
                        "{}: merged finding set diverges from the baseline",
                        what
                    );
                } else {
                    prop_assert_eq!(
                        &outcome.findings,
                        &baseline.findings,
                        "{}: findings diverge from the baseline",
                        what
                    );
                }
                if mode.exact_records {
                    prop_assert_eq!(
                        outcome.records, baseline.records,
                        "{}: record accounting diverges from the baseline",
                        what
                    );
                }
                if mode.exact_wire {
                    prop_assert_eq!(
                        outcome.wire_bits, baseline.wire_bits,
                        "{}: wire accounting diverges from the baseline",
                        what
                    );
                }
            }
        }
    }
}
