//! Capture-side idempotency filtering: filtered ≡ unfiltered under every
//! lifeguard's declared soundness contract.
//!
//! The contract (`Lifeguard::idempotency`) promises that suppressing
//! duplicate load/store records inside the declared window cannot change
//! what the lifeguard reports:
//!
//! * AddrCheck and LockSet (window contracts) and MemProfile (fold
//!   contract) must produce **byte-identical findings** at any window
//!   size, across programs and shard counts;
//! * MemProfile's *profile totals* must stay exact — duplicates fold into
//!   `Repeat` summaries that multiply back in;
//! * TaintCheck (no contract) must be provably untouched: its shipped
//!   stream is bit-identical whatever the window size;
//! * window size 0 must degenerate to the unfiltered pipeline bit for bit
//!   (findings, cycle totals, stalls, and the full `LogStats`);
//! * the co-simulated and live modes must still ship the identical wire
//!   stream when the window is on, and the two sharded modes must still
//!   match per shard.

use proptest::prelude::*;

use lba::parallel::run_lba_parallel;
use lba::{run_lba, run_live, run_live_parallel, LogStats, SystemConfig};
use lba_isa::Program;
use lba_lifeguard::Lifeguard;
use lba_lifeguards::{AddrCheck, LockSet, MemProfile, MemoryProfile, TaintCheck};
use lba_workloads::{bugs, Benchmark};

fn make_lifeguard(idx: usize) -> Box<dyn Lifeguard> {
    match idx {
        0 => Box::new(AddrCheck::new()),
        1 => Box::new(TaintCheck::new()),
        2 => Box::new(LockSet::new()),
        _ => Box::new(MemProfile::new()),
    }
}

fn make_program(idx: usize) -> Program {
    match idx {
        0 => bugs::memory_bugs(),
        1 => bugs::exploit(),
        2 => bugs::data_race(),
        3 => bugs::tainted_syscall(),
        _ => Benchmark::Bc.build(),
    }
}

fn with_window(window: usize) -> SystemConfig {
    let mut config = SystemConfig::default();
    config.log.idempotency_window = window;
    config
}

/// The capture ledger must always balance: what shipped is what was
/// captured, minus the two kinds of drops, plus the fold summaries.
fn assert_ledger(log: &LogStats, what: &str) {
    assert_eq!(
        log.records,
        log.captured - log.filtered - log.deduped + log.folded,
        "capture ledger out of balance: {what} ({log:?})"
    );
    assert!(log.folded <= log.deduped, "{what}: summaries exceed drops");
}

/// Findings equality between a windowed run and the unfiltered baseline,
/// plus the stats invariants that hold for every sound contract.
fn assert_filtered_equivalent(program: &Program, lifeguard_idx: usize, window: usize) {
    let mut lg = make_lifeguard(lifeguard_idx);
    let base = run_lba(program, lg.as_mut(), &with_window(0)).expect("unfiltered run");
    let mut lg = make_lifeguard(lifeguard_idx);
    let filtered = run_lba(program, lg.as_mut(), &with_window(window)).expect("filtered run");

    let what = format!(
        "{} / lifeguard {lifeguard_idx} / window {window}",
        program.name()
    );
    assert_eq!(filtered.findings, base.findings, "findings: {what}");
    assert_eq!(
        filtered.log.captured, base.log.captured,
        "capture sees every retired record: {what}"
    );
    assert!(
        filtered.log.records <= base.log.records,
        "dedup cannot grow the log: {what}"
    );
    assert_ledger(&base.log, &what);
    assert_ledger(&filtered.log, &what);
    if window == 0 {
        // Degeneration: a zero-size window is bit-for-bit today's
        // pipeline (`base` is literally the same configuration, so this
        // pins that the refactored single capture pass added nothing).
        assert_eq!(filtered.log, base.log, "window 0 LogStats: {what}");
        assert_eq!(filtered.total_cycles, base.total_cycles, "cycles: {what}");
        assert_eq!(filtered.stalls, base.stalls, "stalls: {what}");
        assert_eq!(filtered.log.deduped, 0, "{what}");
        assert_eq!(filtered.log.folded, 0, "{what}");
    }
    if lifeguard_idx == 1 {
        // TaintCheck declares IdempotencyClass::None: whatever the window
        // size, its stream is untouched — same records, same frames, same
        // wire bits, same cycle totals.
        assert_eq!(filtered.log, base.log, "taintcheck LogStats: {what}");
        assert_eq!(
            filtered.total_cycles, base.total_cycles,
            "taintcheck cycles: {what}"
        );
        assert_eq!(filtered.log.deduped, 0, "taintcheck deduped: {what}");
    }
}

/// The sharded counterpart: merged findings and per-shard wire streams of
/// the filtered modeled run must match the filtered live run, and the
/// findings must match the unfiltered sharded baseline.
fn assert_parallel_filtered_equivalent(
    program: &Program,
    lifeguard_idx: usize,
    shards: usize,
    window: usize,
) {
    let make = || make_lifeguard(lifeguard_idx);
    let base = run_lba_parallel(program, make, shards, &with_window(0)).expect("unfiltered");
    let cfg = with_window(window);
    let filtered = run_lba_parallel(program, make, shards, &cfg).expect("filtered");
    let live = run_live_parallel(program, make, shards, &cfg).expect("live filtered");

    let what = format!(
        "{} / lifeguard {lifeguard_idx} / {shards} shards / window {window}",
        program.name()
    );
    assert_eq!(filtered.findings, base.findings, "findings: {what}");
    assert_eq!(live.findings, filtered.findings, "live findings: {what}");
    assert_eq!(live.capture, filtered.capture, "capture stats: {what}");
    assert_eq!(
        filtered.capture.captured,
        filtered.trace.instructions(),
        "capture sees the whole stream: {what}"
    );
    for (idx, (l, m)) in live.shard_log.iter().zip(&filtered.shard_log).enumerate() {
        assert_eq!(
            (l.records, l.frames, l.payload_bits, l.wire_bits),
            (m.records, m.frames, m.payload_bits, m.wire_bits),
            "shard {idx} wire stream: {what}"
        );
    }
    if window == 0 {
        assert_eq!(filtered.shard_cycles, base.shard_cycles, "cycles: {what}");
        assert_eq!(filtered.shard_log, base.shard_log, "shard stats: {what}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Findings equality over random programs, lifeguards and window
    /// sizes (0 included: the bit-for-bit degeneration case).
    #[test]
    fn filtered_findings_match_unfiltered(
        program_idx in 0usize..5,
        lifeguard_idx in 0usize..4,
        window in prop_oneof![Just(0usize), 1usize..16, Just(64usize), Just(1024usize)],
    ) {
        let program = make_program(program_idx);
        assert_filtered_equivalent(&program, lifeguard_idx, window);
    }

    /// The same property through both sharded modes, which must also stay
    /// byte-identical to each other per shard with the window on.
    #[test]
    fn sharded_filtered_findings_match_unfiltered(
        program_idx in 0usize..5,
        use_lockset in prop_oneof![Just(false), Just(true)],
        shards in 1usize..5,
        window in prop_oneof![Just(0usize), 1usize..16, Just(256usize)],
    ) {
        let program = make_program(program_idx);
        // The two shardable lifeguards: AddrCheck (0) and LockSet (2).
        let lifeguard_idx = if use_lockset { 2 } else { 0 };
        assert_parallel_filtered_equivalent(&program, lifeguard_idx, shards, window);
    }
}

#[test]
fn filtered_equivalence_on_a_real_benchmark() {
    // One deterministic heavyweight case per contract outside proptest:
    // a real workload with syscall flushes and eviction-heavy tiny
    // windows.
    let program = make_program(4);
    for lifeguard_idx in 0..4 {
        assert_filtered_equivalent(&program, lifeguard_idx, 3);
        assert_filtered_equivalent(&program, lifeguard_idx, 4096);
    }
    assert_parallel_filtered_equivalent(&program, 0, 4, 1024);
    assert_parallel_filtered_equivalent(&program, 2, 3, 7);
}

#[test]
fn sharded_fold_summaries_route_identically_in_both_modes() {
    // The fold contract through the sharded modes: Repeat summaries are
    // synthesized on the producer and routed by `shard_of` to the shard
    // owning their line (like the accesses they summarize), in both the
    // modeled and live mode — per-shard wire streams must stay
    // byte-identical, and summaries must actually flow.
    let program = Benchmark::Gzip.build();
    for shards in [1, 3] {
        assert_parallel_filtered_equivalent(&program, 3, shards, 256);
    }
    let cfg = with_window(256);
    let report = run_lba_parallel(&program, || make_lifeguard(3), 3, &cfg).unwrap();
    assert!(
        report.capture.deduped > 0,
        "gzip must fold under MemProfile"
    );
    assert!(report.capture.folded > 0, "summaries must reach the shards");
}

#[test]
fn live_wire_stream_matches_cosim_with_window_on() {
    // The filtered capture pass runs on both producers; the streams must
    // stay byte-identical, which also pins that dedup decisions are
    // deterministic and mode-independent.
    let program = Benchmark::Gzip.build();
    let config = with_window(4096);
    let mut lg = AddrCheck::new();
    let cosim = run_lba(&program, &mut lg, &config).unwrap();
    let mut lg = AddrCheck::new();
    let live = run_live(&program, &mut lg, &config).unwrap();
    assert!(cosim.log.deduped > 0, "gzip must have duplicates to drop");
    assert_eq!(live.log, cosim.log, "filtered wire streams must agree");
    assert_eq!(live.findings, cosim.findings);
}

fn profile_view(p: &MemoryProfile) -> (u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        p.loads,
        p.stores,
        p.bytes_accessed,
        p.allocs,
        p.frees,
        p.bytes_allocated,
        p.live_bytes,
        p.peak_live_bytes,
    )
}

#[test]
fn memprofile_totals_stay_exact_under_folding() {
    // The fold contract's whole point: every suppressed duplicate comes
    // back as a count, so the end-of-run profile is *equal*, not merely
    // close — histograms included.
    for program in [Benchmark::Gzip.build(), make_program(4)] {
        let mut base = MemProfile::new();
        let unfiltered = run_lba(&program, &mut base, &with_window(0)).unwrap();
        let mut folded = MemProfile::new();
        let filtered = run_lba(&program, &mut folded, &with_window(512)).unwrap();

        assert!(filtered.log.deduped > 0, "{}: no folding", program.name());
        assert!(filtered.log.folded > 0, "{}: no summaries", program.name());
        assert!(
            filtered.log.records < unfiltered.log.records,
            "{}: folding must shrink the log",
            program.name()
        );
        let (base_p, fold_p) = (base.profile(), folded.profile());
        assert_eq!(
            profile_view(base_p),
            profile_view(fold_p),
            "{}: totals must be exact",
            program.name()
        );
        assert_eq!(base_p.distinct_lines(), fold_p.distinct_lines());
        assert_eq!(
            base_p.hottest_lines(usize::MAX),
            fold_p.hottest_lines(usize::MAX),
            "{}: line histogram must be exact",
            program.name()
        );
        assert_eq!(
            base_p.hottest_pcs(usize::MAX),
            fold_p.hottest_pcs(usize::MAX),
            "{}: pc histogram must be exact",
            program.name()
        );
    }
}

#[test]
fn dedup_shrinks_records_wire_bits_and_lifeguard_time() {
    // The headline effect on a dedup-heavy workload: fewer records
    // shipped, fewer bits on the wire, less lifeguard-core time — same
    // findings (pinned above).
    let program = Benchmark::Gzip.build();
    let mut lg = AddrCheck::new();
    let base = run_lba(&program, &mut lg, &with_window(0)).unwrap();
    let mut lg = AddrCheck::new();
    let filtered = run_lba(&program, &mut lg, &with_window(4096)).unwrap();

    assert!(filtered.log.deduped > 0);
    assert!(
        filtered.log.records < base.log.records,
        "records: {} -> {}",
        base.log.records,
        filtered.log.records
    );
    assert!(
        filtered.log.wire_bits < base.log.wire_bits,
        "wire bits: {} -> {}",
        base.log.wire_bits,
        filtered.log.wire_bits
    );
    assert!(
        filtered.lifeguard_cycles < base.lifeguard_cycles,
        "lifeguard cycles: {} -> {}",
        base.lifeguard_cycles,
        filtered.lifeguard_cycles
    );
    assert_eq!(filtered.findings, base.findings);
}

#[test]
fn range_filter_and_window_compose_in_one_pass() {
    // Satellite regression: both filters active at once, in every mode
    // that honours the range filter — the single capture pass must apply
    // range-then-window, and live must agree with cosim exactly.
    let program = Benchmark::Gzip.build();
    let mut config = with_window(1024);
    config.log.filter = Some(lba_lifeguard::AddrRangeFilter::new(vec![(
        lba_mem::layout::HEAP_BASE,
        lba_mem::layout::HEAP_END,
    )]));
    let mut lg = AddrCheck::new();
    let cosim = run_lba(&program, &mut lg, &config).unwrap();
    let mut lg = AddrCheck::new();
    let live = run_live(&program, &mut lg, &config).unwrap();

    assert!(cosim.log.filtered > 0, "range filter must drop");
    assert!(cosim.log.deduped > 0, "window must drop too");
    assert_eq!(live.log, cosim.log, "one pass, both modes");

    // Findings still match a fully unfiltered run: the heap range is
    // sound for AddrCheck, and the window is sound by contract.
    let mut lg = AddrCheck::new();
    let unfiltered = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
    assert_eq!(cosim.findings, unfiltered.findings);
}
