//! Syscall-stall containment semantics (§2 of the paper): "the OS stalls
//! each application syscall until the lifeguard finishes checking the
//! remaining log entries that executed prior to the syscall invocation",
//! so errors cannot propagate beyond the process container.

use lba::{run_lba, LifeguardKind, SystemConfig};
use lba_lifeguard::FindingKind;
use lba_workloads::{bugs, Benchmark};

#[test]
fn every_syscall_is_stalled_when_containment_is_on() {
    let program = Benchmark::Gs.build();
    let config = SystemConfig::default();
    let mut lg = LifeguardKind::AddrCheck.make_lba();
    let report = run_lba(&program, lg.as_mut(), &config).unwrap();
    assert_eq!(
        report.stalls.syscalls,
        report.trace.count(lba_record::EventKind::Syscall),
        "each syscall must pass through the containment stall"
    );
    assert!(report.stalls.syscall_stall_cycles > 0);
}

#[test]
fn disabling_containment_removes_the_stalls_but_not_detection() {
    let program = bugs::tainted_syscall();

    let on = {
        let mut lg = LifeguardKind::TaintCheck.make_lba();
        run_lba(&program, lg.as_mut(), &SystemConfig::default()).unwrap()
    };
    let off = {
        let mut config = SystemConfig::default();
        config.log.syscall_stall = false;
        let mut lg = LifeguardKind::TaintCheck.make_lba();
        run_lba(&program, lg.as_mut(), &config).unwrap()
    };

    assert!(on.stalls.syscalls > 0);
    assert_eq!(off.stalls.syscalls, 0);
    assert_eq!(off.stalls.syscall_stall_cycles, 0);
    // Detection itself does not depend on the stall — only the guarantee
    // about *when* relative to the kernel boundary.
    for report in [&on, &off] {
        assert!(report
            .findings_of(FindingKind::TaintedSyscallArg)
            .next()
            .is_some());
    }
}

#[test]
fn containment_makes_the_application_wait_for_the_lagging_lifeguard() {
    // TaintCheck is lifeguard-bound, so the log has depth when the
    // syscall arrives; with containment on, the app clock must absorb it.
    let program = bugs::tainted_syscall();
    let config = SystemConfig::default();
    let mut lg = LifeguardKind::TaintCheck.make_lba();
    let report = run_lba(&program, lg.as_mut(), &config).unwrap();
    assert!(
        report.stalls.syscall_stall_cycles > 1000,
        "2000 padding instructions of lag must be drained at the syscall; got {}",
        report.stalls.syscall_stall_cycles
    );
    // With the drain, the application clock has caught up to (or passed)
    // the lifeguard at every syscall, so ends within one tail of it.
    assert!(report.app_cycles >= report.lifeguard_cycles / 2);
}

#[test]
fn containment_bounds_error_propagation_in_the_timeline() {
    // The containment guarantee, stated on clocks: when the syscall
    // retires at app-time T, every earlier record has been checked at
    // lifeguard-time <= T. We verify the observable consequence: with
    // containment on, the end-to-end time equals the application clock
    // (the lifeguard never finishes after the final syscall by more than
    // the post-syscall tail).
    let program = bugs::tainted_syscall();
    let config = SystemConfig::default();
    let mut lg = LifeguardKind::TaintCheck.make_lba();
    let report = run_lba(&program, lg.as_mut(), &config).unwrap();
    // tainted_syscall ends almost immediately after its syscall, so the
    // lifeguard tail is tiny relative to the stalled app clock.
    let tail = report.total_cycles - report.app_cycles;
    assert!(
        tail * 10 < report.total_cycles,
        "post-syscall lifeguard tail ({tail}) should be small next to total ({})",
        report.total_cycles
    );
}
