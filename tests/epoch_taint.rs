//! Epoch-parallel TaintCheck acceptance: the summarize-then-stitch
//! pipeline is *byte-identical* to the sequential lifeguard — same
//! findings in the same order with the same messages, same final taint
//! accounting — across programs, epoch sizes, worker counts, and the
//! modeled/live execution models; degenerate configurations (one epoch,
//! one worker) collapse to the sequential behaviour; and a recorded
//! epoch run replays to the same findings offline.

use proptest::prelude::*;

use lba::{
    run_epoch_parallel, run_lba, run_live_epoch_parallel, run_replay_epoch, RecordConfig,
    RunReport, SystemConfig,
};
use lba_lifeguards::TaintCheck;
use lba_workloads::{bugs, Benchmark};

/// The sequential ground truth: `run_lba` with a concrete TaintCheck.
fn sequential(program: &lba_isa::Program, config: &SystemConfig) -> (RunReport, u64) {
    let mut lg = TaintCheck::new();
    let report = run_lba(program, &mut lg, config).expect("sequential run");
    (report, lg.tainted_bytes_introduced())
}

fn program_for(idx: usize) -> lba_isa::Program {
    match idx {
        0 => bugs::exploit(),
        1 => bugs::tainted_syscall(),
        2 => bugs::memory_bugs(), // no taint findings: the clean case
        _ => Benchmark::Gzip.build(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The equivalence grid: programs × epoch sizes × worker counts ×
    /// modeled/live. Findings (order, pc, kind, tid, message), the
    /// master's final taint accounting, and the record totals all match
    /// the sequential run — epochs partition the stream, so the workers
    /// together carry exactly the sequential record stream.
    #[test]
    fn epoch_parallel_equals_sequential_across_the_grid(
        program_idx in 0usize..4,
        epoch_records in prop_oneof![Just(1usize), Just(7), Just(64), Just(1024)],
        workers in 1usize..5,
        live in any::<bool>(),
    ) {
        let program = program_for(program_idx);
        let mut config = SystemConfig::default();
        config.log.epoch_records = epoch_records;
        let (seq, seq_tainted) = sequential(&program, &config);

        if live {
            let mut master = TaintCheck::new();
            let report = run_live_epoch_parallel(&program, &mut master, workers, &config)
                .expect("live epoch run");
            prop_assert_eq!(&report.findings, &seq.findings);
            prop_assert_eq!(master.tainted_bytes_introduced(), seq_tainted);
            prop_assert_eq!(report.total_records(), seq.log.records);
            prop_assert_eq!(report.worker_log.len(), workers);
        } else {
            let mut master = TaintCheck::new();
            let report = run_epoch_parallel(&program, &mut master, workers, &config)
                .expect("modeled epoch run");
            prop_assert_eq!(&report.findings, &seq.findings);
            prop_assert_eq!(master.tainted_bytes_introduced(), seq_tainted);
            prop_assert_eq!(report.log.records, seq.log.records);
            prop_assert_eq!(report.log.captured, seq.log.records);
            prop_assert_eq!(report.worker_cycles.len(), workers);
        }
    }
}

#[test]
fn degenerate_single_epoch_single_worker_still_matches() {
    // One epoch (cap larger than any trace here) on one worker: the
    // pipeline collapses to summarize-everything-then-absorb-once, the
    // purest test of the symbolic transfer function.
    let mut config = SystemConfig::default();
    config.log.epoch_records = usize::MAX >> 1;
    for program in [bugs::exploit(), bugs::tainted_syscall()] {
        let (seq, seq_tainted) = sequential(&program, &config);
        let mut master = TaintCheck::new();
        let report = run_epoch_parallel(&program, &mut master, 1, &config).expect("epoch run");
        // Syscalls still close epochs (the containment boundary), so the
        // count is the syscall count, not 1 — but with a single worker the
        // stitch order is trivially sequential either way.
        assert!(report.epochs >= 1);
        assert_eq!(report.findings, seq.findings, "{}", report.program);
        assert_eq!(master.tainted_bytes_introduced(), seq_tainted);
    }
}

#[test]
fn single_record_epochs_are_the_other_degenerate_end() {
    // Every record its own epoch: maximal stitch traffic, zero symbolic
    // slack — each summary resolves against fully concrete state.
    let mut config = SystemConfig::default();
    config.log.epoch_records = 1;
    let program = bugs::exploit();
    let (seq, seq_tainted) = sequential(&program, &config);
    let mut master = TaintCheck::new();
    let report = run_epoch_parallel(&program, &mut master, 3, &config).expect("epoch run");
    assert_eq!(report.epochs, seq.log.records, "one epoch per record");
    assert_eq!(report.findings, seq.findings);
    assert_eq!(master.tainted_bytes_introduced(), seq_tainted);
}

#[test]
fn modeled_and_live_epoch_modes_agree_with_each_other() {
    // The two execution models share the router and summarizer; their
    // findings and aggregate record totals must agree record-for-record.
    let program = Benchmark::Gzip.build();
    let mut config = SystemConfig::default();
    config.log.epoch_records = 128;
    let mut modeled_master = TaintCheck::new();
    let modeled =
        run_epoch_parallel(&program, &mut modeled_master, 3, &config).expect("modeled run");
    let mut live_master = TaintCheck::new();
    let live = run_live_epoch_parallel(&program, &mut live_master, 3, &config).expect("live run");
    assert_eq!(modeled.findings, live.findings);
    assert_eq!(modeled.epochs, live.epochs);
    assert_eq!(modeled.log.records, live.total_records());
    assert_eq!(
        modeled_master.tainted_bytes_introduced(),
        live_master.tainted_bytes_introduced()
    );
}

#[test]
fn recorded_epoch_run_replays_byte_identical() {
    // Both epoch modes leave one recorded stream per worker with the
    // epoch marks in the frame headers; offline replay rebuilds the
    // epochs from the marks and stitches to the same findings.
    let program = bugs::exploit();
    for live in [false, true] {
        let dir = std::env::temp_dir().join(format!(
            "lba-epoch-replay-{}-{}",
            std::process::id(),
            if live { "live" } else { "modeled" }
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut config = SystemConfig::default();
        config.log.epoch_records = 16;
        config.log.record_to = Some(RecordConfig::new(&dir));
        let (seq, seq_tainted) = sequential(&program, &config);

        let mut master = TaintCheck::new();
        let (findings, workers) = if live {
            let r = run_live_epoch_parallel(&program, &mut master, 2, &config).expect("live run");
            (r.pipeline.findings, r.workers)
        } else {
            let r = run_epoch_parallel(&program, &mut master, 2, &config).expect("modeled run");
            (r.pipeline.findings, r.workers)
        };
        assert_eq!(findings, seq.findings);

        let mut replay_master = TaintCheck::new();
        let replay = run_replay_epoch(&dir, &mut replay_master, &config).expect("replay");
        assert_eq!(replay.findings, seq.findings, "live={live}");
        assert_eq!(replay.streams.len(), workers, "one stream per worker");
        assert_eq!(
            replay.streams.iter().map(|s| s.records).sum::<u64>(),
            seq.log.records
        );
        assert_eq!(replay_master.tainted_bytes_introduced(), seq_tainted);
        std::fs::remove_dir_all(&dir).ok();
    }
}
