//! Adaptive-capture acceptance: contract-governed degradation engages
//! under injected back-pressure, never changes findings for any
//! lifeguard whose policy promises soundness, accounts for every record
//! it removes, and leaves TaintCheck's stream provably untouched. The
//! fault-injection satellites ride along: quiet injection is
//! transparent, and a genuinely stalled live consumer surfaces as
//! `RunError::ChannelStalled` instead of a livelock.

use std::time::Duration;

use proptest::prelude::*;

use lba::{
    parallel::run_lba_parallel, run_lba, run_live, run_live_parallel, AdaptiveConfig,
    DegradationStats, FaultProfile, RunError, SystemConfig, MAX_RECORDED_INTERVALS,
};
use lba_lifeguard::Lifeguard;
use lba_lifeguards::{AddrCheck, LockSet, MemProfile, TaintCheck};
use lba_workloads::{bugs, Benchmark};

/// Thresholds low enough that the modeled slow-drain profile engages on
/// the small bug workloads too (the default 700‰ needs a larger queue
/// excursion than a short run can build).
fn aggressive() -> AdaptiveConfig {
    AdaptiveConfig {
        engage_permille: 300,
        disengage_permille: 100,
        sample_stride: 16,
        ..AdaptiveConfig::default()
    }
}

fn degraded_config(seed: u64) -> SystemConfig {
    let mut config = SystemConfig::default();
    config.log.adaptive = Some(aggressive());
    config.log.fault = Some(FaultProfile::slow_drain(seed));
    // A small buffer makes back-pressure real: the modeled channel only
    // drains under pressure, so occupancy genuinely climbs past the
    // engage threshold (and the injected stalls keep it there).
    config.log.buffer_bytes = 2 << 10;
    config
}

/// Every invariant `DegradationStats` promises, checkable on any run:
/// interval bounds are ordered, and when no interval was dropped by the
/// recording cap, the per-interval ledgers sum exactly to the totals —
/// the intervals *cover* everything degradation removed.
fn assert_stats_consistent(stats: &DegradationStats) {
    for interval in &stats.intervals {
        assert!(
            interval.from_record <= interval.to_record,
            "interval bounds ordered: {interval:?}"
        );
    }
    assert_eq!(stats.removed(), stats.sampled_out + stats.kind_dropped);
    if (stats.engagements as usize) <= MAX_RECORDED_INTERVALS {
        assert_eq!(stats.intervals.len() as u64, stats.engagements);
        let sampled: u64 = stats.intervals.iter().map(|i| i.sampled_out).sum();
        let dropped: u64 = stats.intervals.iter().map(|i| i.kind_dropped).sum();
        let span: u64 = stats
            .intervals
            .iter()
            .map(|i| i.to_record - i.from_record)
            .sum();
        assert_eq!(sampled, stats.sampled_out, "intervals cover sampled-out");
        assert_eq!(dropped, stats.kind_dropped, "intervals cover kind-drops");
        assert_eq!(span, stats.degraded_records, "intervals cover the spans");
        assert!(stats.removed() <= stats.degraded_records);
    }
}

#[test]
fn quiet_fault_injection_is_transparent() {
    // The injector always wraps the modeled channel; with the quiet
    // default profile it must be pure delegation — same findings, same
    // wire stream, same modeled time.
    let program = bugs::memory_bugs();
    let mut lg = AddrCheck::new();
    let clean = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
    let mut config = SystemConfig::default();
    config.log.fault = Some(FaultProfile::default());
    assert!(config.log.fault.unwrap().is_quiet());
    let mut lg = AddrCheck::new();
    let quiet = run_lba(&program, &mut lg, &config).unwrap();
    assert_eq!(quiet.findings, clean.findings);
    assert_eq!(quiet.log.wire_bits, clean.log.wire_bits);
    assert_eq!(quiet.app_cycles, clean.app_cycles);
    assert!(quiet.degradation.is_empty());
}

#[test]
fn controller_off_runs_lose_nothing_under_injected_faults() {
    // With `adaptive` unset the controller does not exist; injected
    // consumer stalls may reshape timing but never content — the drain
    // loops retry refused pops until the channel is empty.
    let program = bugs::memory_bugs();
    let mut lg = AddrCheck::new();
    let clean = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
    let mut config = SystemConfig::default();
    config.log.fault = Some(FaultProfile::slow_drain(7));
    let mut lg = AddrCheck::new();
    let faulted = run_lba(&program, &mut lg, &config).unwrap();
    assert_eq!(faulted.findings, clean.findings);
    assert_eq!(faulted.log.records, clean.log.records);
    assert_eq!(faulted.log.wire_bits, clean.log.wire_bits);
    assert!(faulted.degradation.is_empty(), "no controller, no stats");
}

#[test]
fn controller_engages_under_slow_drain_and_findings_are_identical() {
    // The tentpole acceptance, deterministic flavour: injected slow
    // drain pushes the load signal past threshold, the controller
    // engages and removes records, and the findings still match the
    // undegraded run byte for byte.
    let program = Benchmark::Gzip.build();
    let mut lg = AddrCheck::new();
    let clean = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
    let config = degraded_config(42);
    let mut lg = AddrCheck::new();
    let degraded = run_lba(&program, &mut lg, &config).unwrap();
    assert!(
        !degraded.degradation.is_empty(),
        "slow drain must engage the controller: {:?}",
        degraded.degradation
    );
    assert_eq!(degraded.findings, clean.findings);
    assert_stats_consistent(&degraded.degradation);
    // Degradation must actually relieve the wire, not just bookkeep.
    assert!(
        degraded.degradation.removed() > 0,
        "an engaged interval on a hot workload should remove records"
    );
    assert!(degraded.log.records < clean.log.records);
    // Exact ledger: controller drops happen before the capture pass, so
    // the shipped-record deficit is degradation's removals plus whatever
    // extra dedup the widened window bought (the clean run's window is
    // the default zero-entry one, so its dedup term is zero).
    assert_eq!(
        clean.log.records - degraded.log.records,
        degraded.degradation.removed() + degraded.log.deduped - clean.log.deduped,
        "every missing wire record is accounted to degradation or widening"
    );
}

#[test]
fn memprofile_sampling_is_fully_accounted() {
    // MemProfile samples unconditionally (AlwaysSettled) and drops every
    // profile-irrelevant kind, so it exercises both ledgers at once.
    let program = Benchmark::Gzip.build();
    let config = degraded_config(9);
    let mut lg = MemProfile::new();
    let degraded = run_lba(&program, &mut lg, &config).unwrap();
    assert!(!degraded.degradation.is_empty());
    assert!(degraded.degradation.sampled_out > 0, "sampling must bite");
    assert!(degraded.degradation.kind_dropped > 0, "kind-drop must bite");
    assert_stats_consistent(&degraded.degradation);
    assert!(degraded.findings.is_empty(), "MemProfile has no findings");
}

#[test]
fn taintcheck_is_provably_untouched() {
    // A none-policy means the controller is never constructed: same
    // findings, same wire stream, empty stats — under the same injected
    // fault profile and adaptive config that degrade AddrCheck.
    let program = bugs::exploit();
    let mut lg = TaintCheck::new();
    let clean = run_lba(&program, &mut lg, &SystemConfig::default()).unwrap();
    let config = degraded_config(42);
    let mut lg = TaintCheck::new();
    let faulted = run_lba(&program, &mut lg, &config).unwrap();
    assert!(faulted.degradation.is_empty());
    assert_eq!(faulted.findings, clean.findings);
    assert_eq!(faulted.log.records, clean.log.records);
    assert_eq!(faulted.log.wire_bits, clean.log.wire_bits);
}

#[test]
fn live_mode_engages_and_findings_are_identical() {
    // Live flavour: the receiver's injected drag keeps the real SPSC
    // queue full (depth 1 under a sub-frame buffer budget), so the
    // occupancy signal pins to the ceiling and the controller engages.
    let program = Benchmark::Gzip.build();
    let mut lg = AddrCheck::new();
    let clean = run_live(&program, &mut lg, &SystemConfig::default()).unwrap();
    let mut config = degraded_config(42);
    config.log.buffer_bytes = 64;
    config.log.fault = Some(FaultProfile {
        drain_drag: 20_000,
        ..FaultProfile::default()
    });
    let mut lg = AddrCheck::new();
    let degraded = run_live(&program, &mut lg, &config).unwrap();
    assert!(
        !degraded.degradation.is_empty(),
        "a dragged consumer with a one-deep queue must engage: {:?}",
        degraded.degradation
    );
    assert_eq!(degraded.findings, clean.findings);
    assert_stats_consistent(&degraded.degradation);
}

#[test]
fn stalled_live_consumer_surfaces_as_channel_stalled() {
    // Satellite regression: the producer used to spin unboundedly when
    // the consumer stopped draining. With a stall timeout configured,
    // the injected near-dead consumer (a huge per-frame drag against a
    // one-deep queue) must surface as `RunError::ChannelStalled`.
    let program = bugs::memory_bugs();
    let mut config = SystemConfig::default();
    config.log.buffer_bytes = 64;
    config.log.channel_stall_timeout = Some(Duration::from_millis(20));
    config.log.fault = Some(FaultProfile {
        drain_drag: 200_000_000,
        ..FaultProfile::default()
    });
    let mut lg = AddrCheck::new();
    let err = run_live(&program, &mut lg, &config).unwrap_err();
    assert!(matches!(err, RunError::ChannelStalled), "got: {err:?}");
    assert!(err.to_string().contains("stall"));
}

#[test]
fn live_runs_without_timeout_still_complete_under_drag() {
    // The pre-timeout contract is preserved: no configured timeout means
    // the producer waits out any drag, losslessly.
    let program = bugs::memory_bugs();
    let mut lg = AddrCheck::new();
    let clean = run_live(&program, &mut lg, &SystemConfig::default()).unwrap();
    let mut config = SystemConfig::default();
    config.log.buffer_bytes = 64;
    config.log.fault = Some(FaultProfile {
        drain_drag: 50_000,
        ..FaultProfile::default()
    });
    let mut lg = AddrCheck::new();
    let dragged = run_live(&program, &mut lg, &config).unwrap();
    assert_eq!(dragged.findings, clean.findings);
    assert_eq!(dragged.log.records, clean.log.records);
}

/// The degradation grid's lifeguard axis: the three sound policies.
/// (TaintCheck is pinned separately — its guarantee is the *absence* of
/// the controller.)
fn make_kind(idx: usize) -> Box<dyn Lifeguard> {
    match idx {
        0 => Box::new(AddrCheck::new()),
        1 => Box::new(LockSet::new()),
        _ => Box::new(MemProfile::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// (b) of the acceptance grid: for every lifeguard whose policy
    /// promises `findings_sound`, findings under injected slow-drain
    /// degradation are identical to the undegraded run's, in all four
    /// run modes; and (c) the stats ledgers stay exactly covering.
    #[test]
    fn degraded_findings_match_undegraded_across_the_grid(
        program_idx in 0usize..3,
        kind_idx in 0usize..3,
        mode_idx in 0usize..4,
        seed in 1u64..1_000,
    ) {
        let program = match program_idx {
            0 => bugs::memory_bugs(),
            1 => bugs::data_race(),
            _ => bugs::exploit(),
        };
        let clean_config = SystemConfig::default();
        let degraded_config = degraded_config(seed);
        let (clean_findings, degraded_findings, stats) = match mode_idx {
            0 => {
                let mut lg = make_kind(kind_idx);
                let clean = run_lba(&program, lg.as_mut(), &clean_config).unwrap();
                let mut lg = make_kind(kind_idx);
                let degraded = run_lba(&program, lg.as_mut(), &degraded_config).unwrap();
                (clean.pipeline.findings, degraded.pipeline.findings, degraded.pipeline.degradation)
            }
            1 => {
                let mut lg = make_kind(kind_idx);
                let clean = run_live(&program, lg.as_mut(), &clean_config).unwrap();
                let mut lg = make_kind(kind_idx);
                let degraded = run_live(&program, lg.as_mut(), &degraded_config).unwrap();
                (clean.pipeline.findings, degraded.pipeline.findings, degraded.pipeline.degradation)
            }
            2 => {
                let clean =
                    run_lba_parallel(&program, || make_kind(kind_idx), 3, &clean_config).unwrap();
                let degraded =
                    run_lba_parallel(&program, || make_kind(kind_idx), 3, &degraded_config)
                        .unwrap();
                (clean.pipeline.findings, degraded.pipeline.findings, degraded.pipeline.degradation)
            }
            _ => {
                let clean =
                    run_live_parallel(&program, || make_kind(kind_idx), 3, &clean_config).unwrap();
                let degraded =
                    run_live_parallel(&program, || make_kind(kind_idx), 3, &degraded_config)
                        .unwrap();
                (clean.pipeline.findings, degraded.pipeline.findings, degraded.pipeline.degradation)
            }
        };
        prop_assert_eq!(degraded_findings, clean_findings);
        assert_stats_consistent(&stats);
    }
}

/// An AddrCheck that, after a fixed number of delivered events, asks the
/// capture controller to engage degraded capture through the
/// analysis-side dial (`Lifeguard::degradation_request`) — the
/// lifeguard-driven counterpart of the load-driven engagements the rest
/// of this suite exercises.
struct DialAddrCheck {
    inner: AddrCheck,
    seen: u64,
    trigger_at: u64,
    pending: Option<lba::DegradationRequest>,
}

impl DialAddrCheck {
    fn new(trigger_at: u64) -> Self {
        DialAddrCheck {
            inner: AddrCheck::new(),
            seen: 0,
            trigger_at,
            pending: None,
        }
    }
}

impl Lifeguard for DialAddrCheck {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn subscriptions(&self) -> lba_record::EventMask {
        self.inner.subscriptions()
    }

    fn on_event(
        &mut self,
        record: &lba_record::EventRecord,
        ctx: &mut lba_lifeguard::HandlerCtx<'_>,
    ) {
        self.seen += 1;
        if self.seen == self.trigger_at {
            self.pending = Some(lba::DegradationRequest::Engage);
        }
        self.inner.on_event(record, ctx);
    }

    fn on_finish(&mut self, ctx: &mut lba_lifeguard::HandlerCtx<'_>) {
        self.inner.on_finish(ctx);
    }

    fn idempotency(&self) -> lba::IdempotencyClass {
        self.inner.idempotency()
    }

    fn degradation(&self) -> lba::DegradationPolicy {
        self.inner.degradation()
    }

    fn degradation_request(&mut self) -> Option<lba::DegradationRequest> {
        self.pending.take()
    }
}

#[test]
fn lifeguard_dial_request_engages_and_is_ledgered() {
    // No injected fault, no load: the only path to an engagement is the
    // lifeguard's own dial request surfacing from the dispatch engine
    // back to the capture controller.
    let program = Benchmark::Gzip.build();
    let mut config = SystemConfig::default();
    config.log.adaptive = Some(AdaptiveConfig::default());

    let mut clean = AddrCheck::new();
    let baseline = run_lba(&program, &mut clean, &SystemConfig::default()).unwrap();

    let mut dialed = DialAddrCheck::new(1_000);
    let report = run_lba(&program, &mut dialed, &config).unwrap();
    let stats = &report.pipeline.degradation;
    assert_eq!(
        stats.lifeguard_requests, 1,
        "exactly one dial request was made (take semantics): {stats:?}"
    );
    assert!(
        stats.engagements >= 1,
        "the dial request must engage even at zero load: {stats:?}"
    );
    assert_stats_consistent(stats);
    // AddrCheck's policy promises degraded findings stay sound.
    assert_eq!(
        report.pipeline.findings, baseline.pipeline.findings,
        "a dial-driven degradation span must not change findings"
    );

    // The same run without the dial never engages: the ledger entries
    // above are attributable to the lifeguard's request alone.
    let mut undialed = AddrCheck::new();
    let quiet = run_lba(&program, &mut undialed, &config).unwrap();
    assert_eq!(quiet.pipeline.degradation.lifeguard_requests, 0);
    assert!(quiet.pipeline.degradation.is_empty());
}
