//! Root crate: see `tests/` for cross-crate integration tests and `examples/` for runnable scenarios.
