//! # LBA — Log-Based Architectures, end to end
//!
//! A full-system reproduction of *"Log-Based Architectures for
//! General-Purpose Monitoring of Deployed Code"* (Chen et al., ASID/ASPLOS
//! 2006). The paper's proposal: capture a deployed program's dynamic
//! instruction trace in hardware on the core it runs on, compress it, ship
//! it through the cache hierarchy, and replay it as a stream of typed event
//! records to a *lifeguard* — a software monitor such as a memory checker or
//! race detector — running on a second core of the same chip multiprocessor.
//!
//! This crate is the facade over that pipeline:
//!
//! ```text
//!   application core                              lifeguard core(s)
//!  ┌────────────────┐                            ┌────────────────┐
//!  │  lba-workloads │  synthetic SPEC-like programs (gzip, mcf, …) │
//!  │  lba-isa       │  the simulated ISA: decode/encode, assembler │
//!  │  lba-cpu       │  machine model: threads, clocks, syscalls    │
//!  │       │        │                            │        ▲       │
//!  │   capture      │                            │ frame-granular │
//!  │ (lba-record)   │                            │    dispatch    │
//!  │       │        │                            │ (lba-lifeguard:│
//!  │  CaptureFilter─┼─ VPC compression + frame ──┼─▶ pop_frame +  │
//!  │  addr ranges + │  packing (lba-compress)    │ deliver_batch) │
//!  │  idempotency   │                            │        │       │
//!  │  window (drops │                            │  lba-lifeguards│
//!  │  duplicates,   │                            │  AddrCheck ·   │
//!  │  folds counts  │                            │  TaintCheck ·  │
//!  │  into Repeat)  │                            │  LockSet ·     │
//!  │       │        │                            │  MemProfile    │
//!  │  FrameEncoder ─┼─▶ LogChannel: cache-line ──┼─▶ (each one    │
//!  │       │        │   frames through the       │  declares its  │
//!  │  shard_of ─────┼─▶ hierarchy (lba-transport,│  capture-dedup │
//!  │  fan-out: one  │   modelled or live SPSC;   │  soundness     │
//!  │  stream/shard  │   sharded: N streams, one  │  contract via  │
//!  │  EpochRouter ──┼─▶ predictor bank + decoder │  idempotency())│
//!  │  whole-epoch   │   thread per shard; epoch  │                │
//!  │  fan-out (DIFT)│   boundaries ride a frame- ┼─▶ epoch merge: │
//!  │       │        │   header mark, so whole    │  stitch sym-   │
//!  │  Capture-      │   epochs land per worker   │  bolic taint   │
//!  │  Controller ◀──┼── LoadSample: occupancy ───┼─ summaries in  │
//!  │  (degrades     │   feeds *back* from the    │  global epoch  │
//!  │  capture per   │   channel; hysteresis      │  order; any    │
//!  │  each lifeguard's  widens/samples/drops     │  finding snaps │
//!  │  DegradationPolicy per contract only)       │  capture back  │
//!  │       │        │                            │  to full       │
//!  │  lba-cache     │                            │  fidelity      │
//!  │  lba-mem       │                            │                │
//!  └────────────────┘          │ tee             │                │
//!                              │                 └────────────────┘
//!                              ▼ (FrameSink)
//!                 ┌─────────────────────────────┐
//!                 │  flight recorder (lbas/1):  │
//!                 │  sealed frames → segmented  │
//!                 │  on-disk stream, rotation + │
//!                 │  retention (lba-record);    │
//!                 │  run_replay re-decodes the  │
//!                 │  recording through any      │
//!                 │  lifeguard, byte-identical  │
//!                 │  (LogConfig::record_to)     │
//!                 ├─────────────────────────────┤
//!                 │  socket transport (lbas/1   │
//!                 │  frames over UDS, TCP-ready)│
//!                 │  SocketSink ⇄ SocketSource: │
//!                 │  an explicit credit window  │
//!                 │  (one credit per drained    │
//!                 │  frame, sized like the live │
//!                 │  channel depth) carries the │
//!                 │  buffer_bytes back-pressure │
//!                 │  + LoadSample degradation   │
//!                 │  loop across the wire;      │
//!                 │  run_remote puts one shard's│
//!                 │  lifeguard behind each      │
//!                 │  socket (lba-transport::    │
//!                 │  socket)                    │
//!                 └─────────────────────────────┘
//!         consumption is frame-at-a-time: one
//!         ready_at stamp, one HandlerCtx and one
//!         subscription-mask fetch per frame (the
//!         per-record path stays as the bench
//!         baseline, LogConfig::batch_dispatch);
//!         capture is filter-then-compress: the
//!         idempotency window suppresses cleared
//!         re-checks before they cost any wire
//!         (LogConfig::idempotency_window)
//! ```
//!
//! ## Crate map
//!
//! | crate            | role                                                  |
//! |------------------|-------------------------------------------------------|
//! | `lba-isa`        | instruction set: decode/encode, parser, program builder |
//! | `lba-mem`        | flat memory, heap allocator, address-space layout     |
//! | `lba-cpu`        | execution substrate: machine, threads, run errors     |
//! | `lba-cache`      | set-associative caches and the two-core memory system |
//! | `lba-record`     | the typed event-record vocabulary the log carries (incl. `Repeat` fold summaries) + the segmented `lbas/1` flight-recorder stream format (rotation, retention, End records) |
//! | `lba-compress`   | value-prediction log compression + chunked frame codec (< 1 byte/instr on the wire), `CODEC_VERSION` stamped into recordings |
//! | `lba-transport`  | `LogChannel` trait: framed buffer timing model + live cross-thread frame channel, frame-granular `pop_frame`, `shard_of` routing and per-shard channel fan-out, `EpochRouter` time-slicing with epoch-end marks in the frame header; `FrameSink`/`FrameSource` seam with tee mirroring into recordings; the `socket` module speaking `lbas/1` over Unix-domain sockets (TCP-ready via `WireStream`) with an explicit credit window so back-pressure survives the wire; the producer-visible `LoadSample` occupancy signal (the feedback arrow above) and the seeded `FaultInjector`/`FaultSink` fault-injection wrappers |
//! | `lba-lifeguard`  | dispatch engine (batch + per-record), capture filters (`AddrRangeFilter` + per-contract idempotency window in one `CaptureFilter` pass), findings, flat paged shadow memory, the `EpochSummary`/`EpochSummarizer`/`EpochLifeguard` trait triple behind the epoch-parallel modes, and the `DegradationPolicy`/`RegionClassifier` graceful-degradation contracts |
//! | `lba-lifeguards` | the paper's four lifeguards + `TaintCheck`'s symbolic epoch summaries (`taint_summary`); each declares its degradation tolerance next to its idempotency story |
//! | `lba-dbi`        | Valgrind-style inline instrumentation baseline        |
//! | `lba-workloads`  | deterministic benchmark programs                      |
//! | `lba-core`       | ties it together: the staged capture pipeline (`pipeline::Producer` over a `pipeline::ConsumerTopology`), the run-mode/monitor registry (`pipeline::RUN_MODES` / `pipeline::MONITORS`), the unified `Run` builder dispatching every mode behind one validated entry point (the mode-shaped `run_*` functions remain as direct shims), the `LbaError` hierarchy folding every layer's failures, experiments, the shared `PipelineReport` core every report derefs to, and the adaptive `CaptureController` closing the back-pressure feedback loop |
//! | `lba-bench`      | table rendering, Criterion benches, `figures` binary  |
//!
//! ## Execution models
//!
//! All of them drive through the unified [`Run`] builder —
//! `Run::new(&program).mode(RunMode::Live).monitor(LifeguardKind::AddrCheck).run()`
//! — which validates the mode/monitor pairing against the registry
//! capability flags before running and returns a [`RunOutcome`] that
//! derefs to the shared [`PipelineReport`]. The mode-shaped free
//! functions below remain as direct entry points:
//!
//! * [`run_unmonitored`] — the baseline: the program alone on one core;
//! * [`run_lba`] — the proposed system: capture → compression → framed log
//!   channel → dispatch → lifeguard on a second core, with decoupled
//!   clocks, back-pressure, and syscall-stall containment;
//! * [`run_live`] — the same framed pipeline over a real SPSC channel
//!   between OS threads instead of the deterministic timing model: one
//!   queue operation per frame, real wire bytes measured and reported;
//! * [`run_live_parallel`] — the sharded live mode: load/store records
//!   route to the shard owning their cache line, every shard is its own
//!   compressed frame stream with its own predictor bank, and N consumer
//!   threads decode and dispatch concurrently;
//! * [`run_remote`] — the networked twin of the sharded live mode: each
//!   shard's sealed frames cross a real Unix-domain socket (`lbas/1`
//!   framing, TCP-ready) to a worker owning a full decoder + dispatch +
//!   lifeguard stack, with an explicit credit window carrying the
//!   back-pressure and adaptive-degradation semantics across the wire;
//!   per-shard wire streams and merged findings are byte-identical to
//!   [`run_live_parallel`]'s;
//! * [`run_taint_parallel`] / [`run_epoch_parallel`] — the epoch-parallel
//!   mode for *order-sensitive* lifeguards that sharding cannot split:
//!   the stream is cut into whole epochs at syscall boundaries, workers
//!   compute symbolic transfer-function summaries in parallel, and a
//!   merge core stitches them in order — findings byte-identical to the
//!   sequential run ([`run_live_taint_parallel`] runs it on real
//!   threads);
//! * [`run_dbi`] — the comparison point: the lifeguard inlined via dynamic
//!   binary instrumentation on the application core;
//! * [`run_replay`] — offline replay: any of the modes above records its
//!   sealed wire frames to a segmented on-disk stream
//!   ([`LogConfig::record_to`]), and replay re-decodes the recording
//!   through any lifeguard — findings and wire-bit accounting
//!   byte-identical to the original run, no re-simulation
//!   ([`run_replay_epoch`] replays an epoch recording through the
//!   summarize-then-stitch pipeline, epochs rebuilt from the frame
//!   marks; [`run_replay_with`] in [`ReplayMode::SalvagePrefix`]
//!   additionally survives a torn tail segment, replaying the
//!   checksummed prefix and reporting exactly what was lost).
//!
//! Every one of these modes is the *same* producer: a
//! [`Producer`] stage chain (capture filter →
//! adaptive [`CaptureController`] verdicts → recording tee → epoch
//! marking → channel push, with degradation ledgering and syscall-flush
//! containment written exactly once in `lba-core/src/pipeline.rs`)
//! composed with one of four [`ConsumerTopology`]
//! shapes — single consumer, sharded-by-cache-line, epoch-routed
//! fan-out/stitch, or replay source — instantiated over either the
//! modeled or the live transport. The [`MONITORS`]
//! and [`RUN_MODES`] registries enumerate the
//! lifeguards and modes once; the benchmark matrix, the experiment
//! layer and the cross-mode equivalence suite all derive from them.
//!
//! Every producer mode can additionally run *adaptive*: set
//! [`LogConfig::adaptive`] and the [`CaptureController`] watches the
//! transport's [`LoadSample`], degrading capture under back-pressure
//! strictly within each lifeguard's declared [`DegradationPolicy`] —
//! and snapping back to full fidelity on any finding or syscall. Every
//! degraded span is accounted in the report's [`DegradationStats`] and
//! marked on the wire, so replays see it too. The seeded
//! [`FaultProfile`] injectors ([`LogConfig::fault`]) exist to prove all
//! of this deterministically in `tests/degradation.rs`.
//!
//! The [`experiment`] module regenerates every table and figure in the paper
//! (`cargo run --release -p lba-bench --bin figures`), and the [`parallel`]
//! module models the §3 future-work extension of sharding one log across
//! several lifeguard cores ([`run_live_parallel`] runs it for real).
//!
//! ## Quickstart
//!
//! ```
//! use lba::{LifeguardKind, Run, RunMode, RunOutcome, SystemConfig};
//! use lba_workloads::bugs;
//!
//! let program = bugs::memory_bugs();
//! let config = SystemConfig::default();
//!
//! let baseline = Run::new(&program)
//!     .mode(RunMode::Unmonitored)
//!     .config(&config)
//!     .run()?;
//! let monitored = Run::new(&program)
//!     .mode(RunMode::Lba)
//!     .monitor(LifeguardKind::AddrCheck)
//!     .config(&config)
//!     .run()?;
//!
//! // RunOutcome derefs to the shared PipelineReport...
//! assert!(!monitored.findings.is_empty(), "the planted bugs are caught");
//! // ...and the mode-shaped report (with its clocks) is inside the variant.
//! let (RunOutcome::Run(base), RunOutcome::Run(mon)) = (&baseline, &monitored) else {
//!     unreachable!("Unmonitored and Lba produce RunReports");
//! };
//! assert!(mon.slowdown_vs(base) > 1.0);
//! # Ok::<(), lba::LbaError>(())
//! ```

pub use lba_core::{
    epoch_parallel, experiment, live_parallel, parallel, pipeline, remote, replay, report, runner,
    table, CaptureFilter, CaptureStats, ChannelStats, EpochParallelReport, IdempotencyClass,
    LifeguardKind, LiveEpochParallelReport, LiveParallelReport, LiveReport, LogConfig, LogStats,
    Mode, PipelineReport, RecordConfig, RemoteReport, ReplayError, ReplayReport, ReplayStreamStats,
    RunError, RunReport, StallBreakdown, SystemConfig, WindowSpec,
};
// The unified entry point: one builder for every execution model, the
// outcome type every mode-shaped report folds into, and the error
// hierarchy every layer's failures convert into.
pub use lba_core::{LbaError, MonitorChoice, Run, RunMode, RunOutcome};
// The staged capture pipeline and the run-mode/monitor registry: every
// `run_*` entry point above is a thin composition of `Producer` over a
// `ConsumerTopology`, and MONITORS/RUN_MODES are the single source the
// benchmarks, experiments and equivalence suites derive their
// enumerations from.
pub use lba_core::{
    run_dbi, run_epoch_parallel, run_lba, run_live, run_live_epoch_parallel, run_live_parallel,
    run_live_taint_parallel, run_remote, run_replay, run_replay_epoch, run_replay_with,
    run_taint_parallel, run_unmonitored,
};
pub use lba_core::{
    ConsumerTopology, EpochRouted, Execution, ModeOutcome, MonitorSpec, Producer, ProducerFinish,
    ProducerLink, ReplaySource, Route, RunModeSpec, ShardedByLine, SingleConsumer, TopologyKind,
    MONITORS, RUN_MODES,
};
// Adaptive capture under back-pressure: the controller and its knobs, the
// per-lifeguard degradation contracts, the transport load signal, the
// seeded fault injector that drives the acceptance tests, and the replay
// salvage mode for torn recordings.
pub use lba_core::{
    AdaptiveConfig, CaptureController, DegradationPolicy, DegradationRequest, DegradationStats,
    DegradedInterval, FaultInjector, FaultProfile, LoadSample, RegionClassifier, ReplayMode,
    SalvagedTail, SamplingSpec, Transition, Verdict, MAX_RECORDED_INTERVALS,
};

#[cfg(test)]
mod facade_smoke {
    //! Satellite smoke test: the facade re-exports resolve and a minimal
    //! monitored run completes end to end.

    #[test]
    fn facade_paths_resolve_and_pipeline_runs() {
        // Name every advertised re-export so a regression in the facade is
        // a compile error here, not just in downstream tests.
        let _run_lba: fn(
            &lba_isa::Program,
            &mut dyn lba_lifeguard::Lifeguard,
            &crate::SystemConfig,
        ) -> Result<crate::RunReport, crate::RunError> = crate::run_lba;

        // The pipeline registry survives under its advertised names: four
        // monitors, nine run modes, and the topology/producer types.
        assert_eq!(crate::MONITORS.len(), 4);
        assert_eq!(crate::RUN_MODES.len(), 9);
        let _monitor: &crate::MonitorSpec = &crate::MONITORS[0];
        let _mode: &crate::RunModeSpec = &crate::RUN_MODES[0];
        let _exec: crate::Execution = crate::RUN_MODES[0].execution;
        let _topo: crate::TopologyKind = crate::RUN_MODES[0].topology;
        let _route: crate::Route = crate::Route::Single;
        let _single: crate::SingleConsumer = crate::SingleConsumer;
        let _sharded: crate::ShardedByLine = crate::ShardedByLine::new(2);
        let _producer: crate::Producer = crate::Producer::passthrough();

        let config = crate::SystemConfig::default();
        let program = lba_workloads::bugs::memory_bugs();

        let sharded = crate::parallel::run_lba_parallel(
            &program,
            || crate::LifeguardKind::AddrCheck.make_lba(),
            2,
            &config,
        )
        .expect("parallel run completes");
        assert_eq!(sharded.shards, 2);

        let epoch = crate::run_taint_parallel(&program, 2, &config).expect("epoch run completes");
        assert_eq!(epoch.workers, 2);
        let live_epoch: crate::LiveEpochParallelReport =
            crate::run_live_taint_parallel(&program, 2, &config).expect("live epoch completes");
        assert_eq!(live_epoch.findings, epoch.findings);

        let live_sharded = crate::run_live_parallel(
            &program,
            || crate::LifeguardKind::AddrCheck.make_lba(),
            2,
            &config,
        )
        .expect("live parallel run completes");
        assert_eq!(live_sharded.findings, sharded.findings);

        // The socket transport behind the unified builder: same shards,
        // same findings, real wire.
        let remote = crate::Run::new(&program)
            .mode(crate::RunMode::Remote)
            .monitor(crate::LifeguardKind::AddrCheck)
            .workers(2)
            .config(&config)
            .run()
            .expect("remote run completes");
        assert_eq!(remote.findings, live_sharded.findings);
        assert!(matches!(remote, crate::RunOutcome::Remote(_)));

        let baseline = crate::run_unmonitored(&program, &config).expect("baseline runs");
        let kind = crate::LifeguardKind::AddrCheck;
        let mut lifeguard = kind.make_lba();
        let monitored = crate::run_lba(&program, lifeguard.as_mut(), &config).expect("lba runs");

        assert!(
            !monitored.findings.is_empty(),
            "planted bugs must be caught"
        );
        assert!(
            monitored.slowdown_vs(&baseline) > 1.0,
            "monitoring is not free"
        );

        // Flight recorder re-exports: record the same run, replay it, and
        // the findings and wire bits come back byte-identical.
        let dir = std::env::temp_dir().join(format!("lba-facade-smoke-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut recording = config.clone();
        recording.log.record_to = Some(crate::RecordConfig::new(&dir));
        let mut lifeguard = kind.make_lba();
        let recorded =
            crate::run_lba(&program, lifeguard.as_mut(), &recording).expect("recorded run");
        let replay: crate::ReplayReport =
            crate::run_replay(&dir, || kind.make_lba(), &config).expect("replay runs");
        assert_eq!(replay.findings, recorded.findings);
        assert_eq!(replay.total_wire_bits(), recorded.log.wire_bits);
        std::fs::remove_dir_all(&dir).ok();
    }
}
