//! LockSet catching a data race in a two-thread counter where one thread
//! "forgot" the lock — and staying quiet on the disciplined `water`
//! benchmark.
//!
//! ```sh
//! cargo run --release --example data_race_hunt
//! ```

use lba::{run_lba, run_unmonitored, SystemConfig};
use lba_lifeguard::FindingKind;
use lba_lifeguards::LockSet;
use lba_workloads::{bugs, Benchmark};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::default();

    // 1. The buggy counter.
    let racy = bugs::data_race();
    let mut lockset = LockSet::new();
    let report = run_lba(&racy, &mut lockset, &config)?;
    println!("data-race program: {} findings", report.findings.len());
    for finding in report.findings_of(FindingKind::DataRace) {
        println!("  {finding}");
    }
    assert!(report.findings_of(FindingKind::DataRace).next().is_some());

    // 2. The disciplined multithreaded benchmark: no false positives.
    let water = Benchmark::Water.build();
    let baseline = run_unmonitored(&water, &config)?;
    let mut lockset = LockSet::new();
    let clean = run_lba(&water, &mut lockset, &config)?;
    println!(
        "\nwater (4 threads, lock-disciplined): {} findings at {:.1}x slowdown",
        clean.findings.len(),
        clean.slowdown_vs(&baseline),
    );
    assert!(clean.findings.is_empty(), "no false positives on water");
    println!(
        "lockset checked {} shared accesses",
        lockset.checked_accesses()
    );
    Ok(())
}
