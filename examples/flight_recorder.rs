//! The flight-recorder story: run a workload once under AddrCheck while
//! recording the compressed log to disk, then replay the recording through
//! a *different* lifeguard (LockSet) — the paper's retroactive-monitoring
//! pitch: one captured trace, many analyses, no re-execution.
//!
//! ```sh
//! cargo run --release --example flight_recorder
//! ```

use lba::{run_lba, run_replay, LifeguardKind, RecordConfig, SystemConfig};
use lba_workloads::bugs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("lba-flight-recorder-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // 1. The live run: AddrCheck monitors the racy program, and the
    //    transport tees every sealed frame into an lbas/1 stream on disk.
    let program = bugs::data_race();
    let mut config = SystemConfig::default();
    config.log.record_to = Some(RecordConfig::new(&dir));
    let mut addrcheck = LifeguardKind::AddrCheck.make_lba();
    let recorded = run_lba(&program, addrcheck.as_mut(), &config)?;
    println!(
        "live run under AddrCheck: {} findings, {} wire bits recorded",
        recorded.findings.len(),
        recorded.log.wire_bits
    );

    let segments: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    println!("recording at {}: {segments:?}", dir.display());

    // 2. Yesterday's traffic, today's analysis: replay the same recording
    //    through LockSet. The data race AddrCheck could not see is in the
    //    log all along.
    let replay = run_replay(&dir, || LifeguardKind::LockSet.make_lba(), &config)?;
    println!("\n{replay}");
    assert!(
        !replay.findings.is_empty(),
        "LockSet finds the race in the recorded stream"
    );

    // 3. Fidelity check: the replayed wire bits equal the live transport's
    //    accounting bit for bit.
    assert_eq!(replay.total_wire_bits(), recorded.log.wire_bits);
    assert_eq!(replay.total_records(), recorded.log.records);
    println!(
        "replay accounted {} wire bits — byte-identical to the live run",
        replay.total_wire_bits()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
