//! "How did I get here?" — the §1 history capability plus the
//! performance-profiling lifeguard and the raw-trace workflow.
//!
//! The program captures a buggy run's log to a trace, replays it through
//! (i) a history index that answers *who last wrote the freed block* and
//! *what path led to the bad access*, and (ii) the MemProfile lifeguard
//! for an always-on memory profile.
//!
//! ```sh
//! cargo run --release --example history_query
//! ```

use lba_cache::{MemSystem, MemSystemConfig};
use lba_cpu::{Machine, MachineConfig};
use lba_lifeguard::history::HistoryIndex;
use lba_lifeguard::DispatchEngine;
use lba_lifeguards::{AddrCheck, MemProfile};
use lba_record::{TraceReader, TraceWriter};
use lba_workloads::bugs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Capture: run the buggy program once, writing the raw trace.
    let program = bugs::memory_bugs();
    let mut machine = Machine::new(&program, MachineConfig::default());
    let mut mem = MemSystem::new(MemSystemConfig::single_core());
    let mut writer = TraceWriter::new();
    machine.run(&mut mem, |r| writer.push(&r.record))?;
    let trace = writer.into_bytes();
    println!(
        "captured {} records ({} bytes raw trace)",
        TraceReader::new(&trace)?.remaining(),
        trace.len()
    );

    // 2. Replay through AddrCheck + a history index in one pass.
    let mut lg_mem = MemSystem::new(MemSystemConfig::dual_core());
    let engine = DispatchEngine::default();
    let mut addrcheck = AddrCheck::new();
    let mut history = HistoryIndex::new(8);
    let mut profiler = MemProfile::new();
    let mut findings = Vec::new();
    for record in TraceReader::new(&trace)? {
        let record = record?;
        history.observe(&record);
        engine.deliver(&mut addrcheck, &record, &mut lg_mem, 1, &mut findings);
        engine.deliver(&mut profiler, &record, &mut lg_mem, 1, &mut findings);
    }

    // 3. For the use-after-free finding, ask the history two questions.
    let uaf = findings
        .iter()
        .find(|f| f.kind == lba_lifeguard::FindingKind::UnallocatedAccess)
        .expect("use-after-free detected");
    println!("\nfinding: {uaf}");

    println!("\nwho last wrote {:#x}?", uaf.addr);
    for write in history.last_writers(uaf.addr) {
        println!(
            "  seq {:>6}: pc={:#x} wrote {} bytes at {:#x}",
            write.seq, write.pc, write.len, write.addr
        );
    }

    println!(
        "\nhow did thread {} get here (last control transfers)?",
        uaf.tid
    );
    for hop in history.path_to_here(uaf.tid).into_iter().take(5) {
        println!(
            "  seq {:>6}: {:?} at pc={:#x} -> {:#x}",
            hop.seq, hop.kind, hop.pc, hop.target
        );
    }

    // 4. The always-on memory profile from the same log.
    let profile = profiler.profile();
    println!(
        "\nmemory profile: {} loads, {} stores, {} distinct lines, peak live {} B",
        profile.loads,
        profile.stores,
        profile.distinct_lines(),
        profile.peak_live_bytes,
    );
    println!("hottest access sites:");
    for (pc, count) in profile.hottest_pcs(3) {
        println!("  pc={pc:#x}: {count} accesses");
    }
    assert!(!history.last_writers(uaf.addr).is_empty());
    Ok(())
}
