//! Quickstart: assemble a tiny program, run it under LBA with AddrCheck,
//! and inspect what the lifeguard saw.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lba::{run_lba, run_unmonitored, SystemConfig};
use lba_isa::parse_program;
use lba_lifeguards::AddrCheck;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a use-after-free, written in the textual assembly.
    let program = parse_program(
        "
        .name quickstart
        movi r1, 64
        alloc r2, r1        ; r2 = malloc(64)
        movi r3, 7
        store.8 r3, [r2+0]  ; fine
        free r2
        load.8 r4, [r2+0]   ; bug: use after free
        syscall 1
        halt
        ",
    )?;

    let config = SystemConfig::default();
    let baseline = run_unmonitored(&program, &config)?;
    println!("unmonitored: {} cycles", baseline.total_cycles);

    let mut addrcheck = AddrCheck::new();
    let monitored = run_lba(&program, &mut addrcheck, &config)?;
    println!(
        "under LBA:   {} cycles ({:.1}x), log {:.3} B/inst",
        monitored.total_cycles,
        monitored.slowdown_vs(&baseline),
        monitored.log.bytes_per_instruction,
    );

    println!("\nlifeguard findings:");
    for finding in &monitored.findings {
        println!("  {finding}");
    }
    assert!(
        !monitored.findings.is_empty(),
        "AddrCheck should have caught the use-after-free"
    );
    Ok(())
}
