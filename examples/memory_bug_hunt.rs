//! AddrCheck sweeping a program with the full memory-bug menu:
//! use-after-free, double free, invalid free, a leak and a wild heap
//! access — with the log-based pipeline's own statistics on display.
//!
//! ```sh
//! cargo run --release --example memory_bug_hunt
//! ```

use lba::{run_lba, run_unmonitored, SystemConfig};
use lba_lifeguard::FindingKind;
use lba_lifeguards::AddrCheck;
use lba_workloads::bugs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = bugs::memory_bugs();
    let config = SystemConfig::default();

    let baseline = run_unmonitored(&program, &config)?;
    let mut addrcheck = AddrCheck::new();
    let report = run_lba(&program, &mut addrcheck, &config)?;

    println!(
        "memory-bugs under LBA AddrCheck ({:.1}x):",
        report.slowdown_vs(&baseline)
    );
    for kind in [
        FindingKind::UnallocatedAccess,
        FindingKind::DoubleFree,
        FindingKind::InvalidFree,
        FindingKind::Leak,
    ] {
        let found: Vec<_> = report.findings_of(kind).collect();
        println!("\n{kind} ({}):", found.len());
        for finding in found {
            println!("  {finding}");
        }
    }

    println!(
        "\npipeline: {} records, {:.3} B/inst compressed",
        report.log.records, report.log.bytes_per_instruction
    );
    println!(
        "stalls:   {} syscall-stall cycles over {} syscalls (containment)",
        report.stalls.syscall_stall_cycles, report.stalls.syscalls,
    );

    assert!(report.findings_of(FindingKind::UnallocatedAccess).count() >= 2);
    assert_eq!(report.findings_of(FindingKind::DoubleFree).count(), 1);
    assert_eq!(report.findings_of(FindingKind::InvalidFree).count(), 1);
    assert_eq!(report.findings_of(FindingKind::Leak).count(), 1);
    Ok(())
}
