//! The log-compression story: per-benchmark bytes/instruction through the
//! VPC-style engine, and what each predictor family contributes.
//!
//! ```sh
//! cargo run --release --example compression_stats
//! ```

use lba::experiment;
use lba::SystemConfig;
use lba_cache::{MemSystem, MemSystemConfig};
use lba_compress::{BitWriter, LogCompressor};
use lba_cpu::{Machine, MachineConfig};
use lba_record::RAW_RECORD_BYTES;
use lba_workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper-level table for all nine benchmarks.
    let rows = experiment::compression_table(&SystemConfig::default(), 1)?;
    println!("benchmark   bytes/inst   ratio vs {RAW_RECORD_BYTES}-byte raw records");
    for row in &rows {
        println!(
            "{:10}  {:10.3}  {:6.1}x",
            row.benchmark.name(),
            row.bytes_per_instruction,
            row.ratio_vs_raw
        );
    }
    let avg: f64 = rows.iter().map(|r| r.bytes_per_instruction).sum::<f64>() / rows.len() as f64;
    println!("average     {avg:10.3}  (paper target: < 1 byte/instruction)");
    assert!(avg < 1.0);

    // 2. A direct feed of one benchmark's trace through the compressor,
    //    showing the running ratio as predictors warm up.
    println!("\ngzip trace, running compression ratio:");
    let program = Benchmark::Gzip.build();
    let mut machine = Machine::new(&program, MachineConfig::default());
    let mut mem = MemSystem::new(MemSystemConfig::single_core());
    let mut compressor = LogCompressor::new();
    let mut writer = BitWriter::new();
    let mut next_report = 10_000u64;
    machine.run(&mut mem, |r| {
        compressor.encode(&r.record, &mut writer);
        let stats = compressor.stats();
        if stats.records == next_report {
            println!(
                "  after {:>7} records: {:.3} B/record ({:.1}x)",
                stats.records,
                stats.bytes_per_record(),
                stats.ratio_vs_raw()
            );
            next_report *= 2;
        }
    })?;
    let final_stats = compressor.stats();
    println!(
        "  final: {} records at {:.3} B/record",
        final_stats.records,
        final_stats.bytes_per_record()
    );
    Ok(())
}
